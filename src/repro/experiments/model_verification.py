"""§4.2 model verification — Fig. 7.

For each point on four axes (number of short flows, number of long
flows, number of paths, deadline) the figure compares:

* **numeric** — the minimum ``q_th`` from Eq. 9
  (:func:`repro.core.model.qth_full`); and
* **simulation** — the smallest *fixed* ``q_th`` (TLB run with
  ``fixed_qth``) under which no short flow misses its deadline,
  found by bisection over the threshold (higher thresholds keep long
  flows out of the short flows' way, so misses are monotone
  non-increasing in ``q_th`` — up to simulation noise, which the
  bisection tolerates by verifying the bracket ends).

The paper's qualitative shape: ``q_th`` grows with ``m_S`` and ``m_L``,
falls with ``n`` and ``D``, and the numeric curve tracks simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core import model
from repro.core.config import TlbConfig
from repro.errors import ModelError
from repro.experiments.common import ScenarioConfig, run_scenario_metrics
from repro.experiments.report import format_table
from repro.units import DEFAULT_HEADER, DEFAULT_MSS, KB, microseconds

__all__ = [
    "VerificationPoint",
    "numeric_qth",
    "simulated_min_qth",
    "run_axis",
    "default_config",
    "main",
]


@dataclass(frozen=True)
class VerificationPoint:
    """One x-value of one Fig. 7 panel."""

    axis: str
    x: float
    numeric_qth: float
    simulated_qth: Optional[int]


def default_config(**overrides) -> ScenarioConfig:
    """§4.2 settings: 15 paths, 512-packet buffers, 100 short + 3 long."""
    base = dict(
        scheme="tlb",
        n_paths=15,
        hosts_per_leaf=110,
        buffer_packets=512,
        n_short=100,
        n_long=3,
        short_window=0.01,
        horizon=1.0,
    )
    base.update(overrides)
    return ScenarioConfig(**base)


def numeric_qth(
    *,
    m_short: int,
    m_long: int,
    n_paths: int,
    deadline: float,
    mean_short_bytes: float = KB(70),
    link_rate: float = 1e9,
    interval: float = microseconds(500),
    rtt: float = microseconds(100),
    w_l_bytes: int = 64 * 1024,
    mss: int = DEFAULT_MSS,
    buffer_packets: int = 512,
) -> float:
    """Eq. 9's minimum ``q_th`` in packets, clamped to [1, buffer]."""
    c_pps = model.capacity_pps(link_rate, mss + DEFAULT_HEADER)
    x_pkts = mean_short_bytes / mss
    try:
        raw = model.qth_full(
            m_short, m_long, x_pkts, deadline, n_paths,
            w_l_bytes / mss, interval, rtt, c_pps,
        )
    except ModelError:
        return float(buffer_packets)
    return float(min(max(raw, 1.0), buffer_packets))


def _misses_at(config: ScenarioConfig, qth: int, deadline: float) -> int:
    """Deadline misses of short flows under a fixed threshold."""
    cfg = config.with_(
        scheme="tlb",
        scheme_params={"fixed_qth": int(qth)},
        deadline_lo=deadline,
        deadline_hi=deadline,
    )
    metrics = run_scenario_metrics(cfg)
    miss = metrics.deadline_miss
    n = metrics.short_fct.n_flows
    return int(round(miss * n)) if miss == miss else 0  # NaN-safe


def simulated_min_qth(
    config: ScenarioConfig,
    deadline: float,
    *,
    qth_max: Optional[int] = None,
) -> Optional[int]:
    """Bisect for the smallest fixed ``q_th`` that fully protects short
    flows.

    The paper's criterion is "no short flows miss their deadlines".  At
    reduced scale a handful of misses can be unavoidable (they persist
    even with long flows pinned at the maximum threshold), so the target
    is the *best attainable* miss count — measured at ``qth_max`` — which
    is zero exactly when the paper's criterion is achievable.  Bisects
    on the (empirically monotone non-increasing) miss count.
    """
    hi = qth_max if qth_max is not None else config.buffer_packets
    lo = 1
    target = _misses_at(config, hi, deadline)
    if _misses_at(config, lo, deadline) <= target:
        return lo
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if _misses_at(config, mid, deadline) <= target:
            hi = mid
        else:
            lo = mid
    return hi


def run_axis(
    axis: str,
    values: Sequence[float],
    *,
    config: Optional[ScenarioConfig] = None,
    deadline: float = 0.010,
    simulate: bool = True,
) -> list[VerificationPoint]:
    """Sweep one Fig. 7 axis.

    ``axis`` is one of ``"m_short"`` (Fig. 7a), ``"m_long"`` (7b),
    ``"n_paths"`` (7c), ``"deadline"`` (7d).
    """
    base = config if config is not None else default_config()
    points: list[VerificationPoint] = []
    for v in values:
        kw = dict(
            m_short=base.n_short, m_long=base.n_long, n_paths=base.n_paths,
            deadline=deadline,
            mean_short_bytes=(base.short_size_lo + base.short_size_hi) / 2,
            link_rate=base.link_rate, rtt=base.rtt,
            buffer_packets=base.buffer_packets,
        )
        cfg = base
        if axis == "m_short":
            kw["m_short"] = int(v)
            cfg = base.with_(n_short=int(v))
        elif axis == "m_long":
            kw["m_long"] = int(v)
            cfg = base.with_(n_long=int(v))
        elif axis == "n_paths":
            kw["n_paths"] = int(v)
            cfg = base.with_(n_paths=int(v))
        elif axis == "deadline":
            kw["deadline"] = float(v)
        else:
            raise ValueError(f"unknown Fig. 7 axis {axis!r}")
        d = kw["deadline"]
        sim_q = simulated_min_qth(cfg, d) if simulate else None
        points.append(VerificationPoint(axis, float(v), numeric_qth(**kw), sim_q))
    return points


def main(simulate: bool = True) -> str:
    """Run all four panels at reduced scale and render tables."""
    cfg = default_config(n_short=60, hosts_per_leaf=70)
    panels = [
        ("m_short", [20, 40, 60, 80]),
        ("m_long", [1, 2, 3, 4]),
        ("n_paths", [10, 15, 20, 25]),
        ("deadline", [0.006, 0.010, 0.015, 0.020]),
    ]
    out = []
    for axis, values in panels:
        pts = run_axis(axis, values, config=cfg, simulate=simulate)
        out.append(format_table(
            [axis, "numeric_qth", "simulated_qth"],
            [[p.x, p.numeric_qth,
              p.simulated_qth if p.simulated_qth is not None else "inf"]
             for p in pts],
            title=f"Fig. 7 — q_th vs {axis}",
        ))
    return "\n\n".join(out)


if __name__ == "__main__":  # pragma: no cover
    print(main())
