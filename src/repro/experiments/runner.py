"""Parallel parameter sweeps, hardened against worker failure.

Figure reproductions are sweeps of independent simulations (scheme ×
load × seed ...), i.e. embarrassingly parallel.  Per the HPC guides,
parallelism lives at the *task* level: each worker process runs one
complete scenario (pure Python event loop, no shared state) and returns
only the small picklable :class:`~repro.metrics.collector.RunMetrics`.

``processes=0`` forces serial in-process execution — useful under pytest
and on machines where fork is restricted; the default uses up to
``os.cpu_count()`` workers but never more than the number of tasks.

Result cache
------------
Pass a :class:`~repro.cache.ResultCache` as ``cache=`` and the sweep
becomes cache-aware: every config is first resolved against the store
(hits fill their result slots instantly, before any worker process is
spawned), only the misses are submitted, and each freshly computed
result is written back the moment it completes — atomically, so
concurrent sweeps sharing a cache directory cannot corrupt each other.
Cache hits count as ``kind="cached"`` in the progress heartbeat.  The
cache keys on the config (plus the code fingerprint); callers supplying
a custom ``runner`` should only pass a cache if that runner is a
deterministic function of the config.

Chunking
--------
Once cache hits shrink the task list, per-task pool IPC (pickling a
config, waking a worker, pickling metrics back) starts to show for
sub-second scenarios.  ``chunksize`` batches several configs into one
worker round-trip; the default picks 1 for small batches (and always
when ``timeout`` is armed, which is per *submitted unit*) and grows the
chunk for large ones.  Inside a chunk each task is still isolated: one
raising task yields a per-item error record, not a lost chunk.

Resilience
----------
A multi-hour sweep must never die because one scenario crashed.  Three
layers of protection:

* **Crash isolation** (``on_error="record"``): a task that keeps raising
  after its retry budget yields a :class:`TaskFailure` row in its result
  slot instead of aborting the sweep; every finished task's result is
  preserved.  The default ``on_error="raise"`` re-raises the first
  failure (after its retries) for callers that prefer fail-fast.
* **Bounded retries** (``retries=N``): each task is attempted up to
  ``1 + N`` times before it is declared failed — transient failures
  (OOM-killed worker, flaky filesystem) don't waste the whole row.
  Retries are spent only on *retryable* errors: a fatal one (a
  :class:`~repro.errors.ConfigError`, a type error — anything
  :func:`repro.fleet.taxonomy.is_fatal` classifies as a pure function
  of the config) fails fast on its first attempt instead of burning
  the budget on a deterministic outcome.
* **Pool fallback**: if worker processes cannot be created at all (no
  ``fork`` on the platform, sandboxed environments) or the pool breaks
  mid-flight (a worker was killed), remaining tasks transparently run
  serially in-process rather than failing.

``timeout=T`` additionally bounds each parallel task's *running* wall
time; a task still running ``T`` seconds after its worker picked it up
is recorded as a timeout failure (its worker process cannot be
reclaimed, so prefer generous timeouts).  Serial execution cannot be
preempted and ignores ``timeout``.

The pool loop waits event-driven on futures — with no ``timeout`` armed
it blocks until a completion with zero scheduled wake-ups.  With a
timeout it sleeps until the earliest armed deadline, polling on a short
schedule only while tasks are still queued (a future's transition to
*running* has no event to wait on).
"""

from __future__ import annotations

import os
import time
import traceback as _traceback
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence, Union

from repro.errors import ConfigError
from repro.experiments.common import ScenarioConfig, run_scenario_metrics
from repro.fleet.taxonomy import is_fatal
from repro.metrics.collector import RunMetrics
from repro.obs.metrics import get_registry
from repro.obs.progress import ProgressReporter

__all__ = ["TaskFailure", "TaskError", "run_many", "sweep", "partition_results"]

#: how often the pool loop wakes to detect queued→running transitions
#: while a per-task timeout is armed (there is no event for "started")
_POLL_INTERVAL = 0.05

#: auto-chunking bounds: never batch more than this many tasks into one
#: worker round-trip, and aim for this many waves of chunks per worker
#: so stragglers cannot idle the rest of the pool
_MAX_CHUNK = 16
_CHUNK_WAVES = 4


@dataclass
class TaskFailure:
    """One task that exhausted its attempts, recorded in the sweep output.

    Stored in the failed task's result slot when ``on_error="record"``,
    so the caller can report the row (scheme, load, seed, ...) alongside
    what went wrong instead of losing the whole sweep.
    """

    index: int
    config: object
    error: str
    traceback: str = ""
    attempts: int = 1
    timed_out: bool = False

    def __str__(self) -> str:  # pragma: no cover - formatting aid
        cause = "timed out" if self.timed_out else self.error
        return f"task {self.index} failed after {self.attempts} attempt(s): {cause}"


class TaskError(RuntimeError):
    """Raised under ``on_error="raise"`` when only the *formatted* error
    of a failed task survives (chunked execution captures per-item
    exceptions as strings inside the worker)."""


@dataclass
class _ChunkItemError:
    """Picklable stand-in for one task's exception inside a chunk."""

    error: str
    traceback: str
    #: classified worker-side while the live exception is still in hand
    fatal: bool = False


def _run_chunk(runner: Callable, configs: list) -> list:
    """Worker-side: run a batch of configs, isolating per-item errors."""
    out = []
    for config in configs:
        try:
            out.append(runner(config))
        except Exception as exc:
            out.append(_ChunkItemError(
                f"{type(exc).__name__}: {exc}",
                "".join(_traceback.format_exception(
                    type(exc), exc, exc.__traceback__)),
                fatal=is_fatal(exc)))
    return out


def partition_results(
    results: Sequence[Union[RunMetrics, TaskFailure]],
) -> tuple[list[RunMetrics], list[TaskFailure]]:
    """Split a ``run_many(on_error="record")`` result list.

    Returns ``(successes, failures)``; successes keep their relative
    order, and each failure still knows its original ``index``.
    """
    ok: list[RunMetrics] = []
    bad: list[TaskFailure] = []
    for r in results:
        (bad if isinstance(r, TaskFailure) else ok).append(r)
    return ok, bad


def _failure(index: int, config: object, exc: BaseException,
             attempts: int, *, timed_out: bool = False) -> TaskFailure:
    return TaskFailure(
        index=index,
        config=config,
        error=f"{type(exc).__name__}: {exc}",
        traceback="".join(
            _traceback.format_exception(type(exc), exc, exc.__traceback__)),
        attempts=attempts,
        timed_out=timed_out,
    )


def _run_serial_task(
    runner: Callable,
    config: object,
    index: int,
    retries: int,
    on_error: str,
) -> Union[RunMetrics, TaskFailure]:
    """One task in-process, with the retry budget applied.

    Fatal errors (deterministic functions of the config — see
    :func:`repro.fleet.taxonomy.is_fatal`) fail on the first attempt;
    only retryable ones consume the budget.
    """
    for attempt in range(1, retries + 2):
        try:
            return runner(config)
        except Exception as exc:
            if attempt <= retries and not is_fatal(exc):
                _retry_scheduled()
                continue
            if on_error == "raise":
                raise
            return _failure(index, config, exc, attempt)
    raise AssertionError("unreachable")  # pragma: no cover


def _task_done(kind: str) -> None:
    """Count one finished task in the process metrics registry."""
    get_registry().counter(
        "repro_runner_tasks_total",
        "Sweep tasks finished, by outcome.").inc(kind=kind)


def _retry_scheduled() -> None:
    get_registry().counter(
        "repro_runner_retries_total",
        "Task attempts re-submitted after a retryable failure.").inc()


def _record(reporter: Optional[ProgressReporter], cache, config, result):
    """Book-keeping for one finished task: progress kind + write-back."""
    if isinstance(result, TaskFailure):
        _task_done("failed")
        if reporter is not None:
            reporter.task_done(kind="failed")
        return result
    if cache is not None:
        cache.put(config, result)
    _task_done("computed")
    if reporter is not None:
        reporter.task_done(kind="computed")
    return result


def run_many(
    configs: Sequence[ScenarioConfig],
    *,
    processes: Optional[int] = None,
    runner: Callable[[ScenarioConfig], RunMetrics] = run_scenario_metrics,
    progress: Union[bool, ProgressReporter] = False,
    label: str = "run_many",
    on_error: str = "raise",
    retries: int = 0,
    timeout: Optional[float] = None,
    cache=None,
    chunksize: Optional[int] = None,
    fleet_dir=None,
) -> list:
    """Run scenarios, preserving input order.

    Parameters
    ----------
    processes:
        ``0`` or ``1`` → serial.  ``None`` → ``min(cpu_count, n_misses)``
        (cache hits never spawn workers).
    runner:
        The per-config function; replaceable for tests.
    progress:
        ``True`` prints a per-task heartbeat with ETA to stderr; pass a
        :class:`~repro.obs.ProgressReporter` to control the destination.
    label:
        Heartbeat prefix when ``progress`` is ``True``.
    on_error:
        ``"raise"`` (default): re-raise a task's error once its retries
        are exhausted.  ``"record"``: put a :class:`TaskFailure` in the
        failed task's result slot and keep going — no crash ever aborts
        the sweep (see :func:`partition_results`).
    retries:
        Extra attempts per task before it counts as failed (default 0).
    timeout:
        Per-task running-time bound in seconds (parallel mode only; see
        the module docstring for semantics and caveats).
    cache:
        Optional :class:`~repro.cache.ResultCache`; hits are resolved
        up front and misses written back on completion (see the module
        docstring).
    chunksize:
        Tasks per worker round-trip; ``None`` picks automatically
        (1 for small batches or when ``timeout`` is armed).
    fleet_dir:
        Route the sweep through the crash-resilient fleet fabric
        (:mod:`repro.fleet`) instead of an in-process pool: cells are
        journaled in this directory, claimed by lease-holding worker
        processes, and survive worker SIGKILL / machine loss — a
        rerun with the same directory resumes with zero recomputation.
        Requires ``cache``; ``processes`` becomes the worker count
        (``0`` → one inline worker), ``timeout``/``chunksize`` do not
        apply, and ``retries`` maps to the fleet's attempt budget.
    """
    if on_error not in ("raise", "record"):
        raise ConfigError(f"on_error must be 'raise' or 'record', got {on_error!r}")
    if retries < 0:
        raise ConfigError(f"retries must be >= 0, got {retries!r}")
    if timeout is not None and timeout <= 0:
        raise ConfigError(f"timeout must be positive, got {timeout!r}")
    if chunksize is not None and chunksize < 1:
        raise ConfigError(f"chunksize must be >= 1, got {chunksize!r}")
    configs = list(configs)
    if not configs:
        return []
    if fleet_dir is not None:
        return _run_fleet_backend(
            configs, fleet_dir=fleet_dir, cache=cache, runner=runner,
            processes=processes, retries=retries, on_error=on_error,
            progress=progress, label=label)
    reporter: Optional[ProgressReporter] = None
    if isinstance(progress, ProgressReporter):
        reporter = progress
    elif progress:
        reporter = ProgressReporter(len(configs), label=label)

    results: list = [None] * len(configs)
    # Resolve cache hits before sizing (or spawning) the pool: the
    # fastest task is one never submitted.
    if cache is not None:
        todo: list[int] = []
        for i, config in enumerate(configs):
            hit = cache.get(config)
            if hit is not None:
                results[i] = hit
                _task_done("cached")
                if reporter is not None:
                    reporter.task_done(kind="cached")
            else:
                todo.append(i)
    else:
        todo = list(range(len(configs)))
    if not todo:
        return results

    if processes is None:
        processes = min(os.cpu_count() or 1, len(todo))
    if processes <= 1 or len(todo) == 1:
        for i in todo:
            results[i] = _record(
                reporter, cache, configs[i],
                _run_serial_task(runner, configs[i], i, retries, on_error))
        return results
    _run_pool(
        configs, todo, results, processes, runner, reporter,
        on_error=on_error, retries=retries, timeout=timeout,
        cache=cache, chunksize=chunksize,
    )
    return results


def _run_fleet_backend(
    configs: list,
    *,
    fleet_dir,
    cache,
    runner: Callable,
    processes: Optional[int],
    retries: int,
    on_error: str,
    progress,
    label: str,
) -> list:
    """Route the sweep through :mod:`repro.fleet` (``fleet_dir=...``)."""
    if cache is None:
        raise ConfigError(
            "fleet_dir requires a result cache (pass cache=...): the fleet"
            " fabric stores every result content-addressed so crashed and"
            " resumed runs never recompute")
    from repro.fleet import run_fleet
    from repro.obs.progress import format_fleet_heartbeat

    on_status = None
    if progress:
        import sys

        def on_status(status: dict) -> None:
            print(format_fleet_heartbeat(status, label=label),
                  file=sys.stderr, flush=True)

    # The default runner is resolvable by dotted spec inside worker
    # subprocesses; only a custom runner needs to travel as an object.
    fleet_runner = None if runner is run_scenario_metrics else runner
    result = run_fleet(
        configs,
        fleet_dir=fleet_dir,
        cache=cache,
        workers=processes,
        runner=fleet_runner,
        max_attempts=1 + retries,
        on_status=on_status,
    )
    if result.failures and on_error == "raise":
        first = result.failures[0]
        raise TaskError(f"{first.error}\n{first.traceback}")
    return result.results


def _auto_chunksize(n_tasks: int, processes: int,
                    timeout: Optional[float]) -> int:
    if timeout is not None:
        # timeout bounds one submitted unit; keep units = single tasks
        return 1
    return max(1, min(_MAX_CHUNK, n_tasks // (processes * _CHUNK_WAVES)))


def _run_pool(
    configs: list,
    todo: list[int],
    results: list,
    processes: int,
    runner: Callable,
    reporter: Optional[ProgressReporter],
    *,
    on_error: str,
    retries: int,
    timeout: Optional[float],
    cache,
    chunksize: Optional[int],
) -> None:
    """The parallel path: chunking, retries, timeouts, pool fallback."""
    try:
        pool = ProcessPoolExecutor(max_workers=processes)
    except (OSError, ImportError, NotImplementedError):
        # No worker processes on this platform/sandbox: degrade to serial.
        for i in todo:
            results[i] = _record(
                reporter, cache, configs[i],
                _run_serial_task(runner, configs[i], i, retries, on_error))
        return
    if chunksize is None:
        chunksize = _auto_chunksize(len(todo), processes, timeout)
    attempts = {i: 1 for i in todo}
    started: dict[Future, Optional[float]] = {}
    pending: dict[Future, tuple[int, ...]] = {}
    any_timeout = False

    def submit_single(idx: int) -> None:
        # Direct submission preserves the original exception object for
        # on_error="raise"; retries always come back through here.
        fut = pool.submit(runner, configs[idx])
        pending[fut] = (idx,)
        started[fut] = None

    def submit_chunk(idxs: tuple[int, ...]) -> None:
        if len(idxs) == 1:
            submit_single(idxs[0])
            return
        fut = pool.submit(_run_chunk, runner, [configs[i] for i in idxs])
        pending[fut] = idxs
        started[fut] = None

    def serial_remainder(indices: Iterable[int]) -> None:
        for idx in sorted(indices):
            results[idx] = _record(
                reporter, cache, configs[idx],
                _run_serial_task(runner, configs[idx], idx, retries, on_error))

    def finish(idx: int, result) -> None:
        results[idx] = _record(reporter, cache, configs[idx], result)

    def item_failed(idx: int, error: str, traceback: str,
                    *, fatal: bool = False) -> bool:
        """Retry or record one failed chunk item; True if rescheduled."""
        if attempts[idx] <= retries and not fatal:
            attempts[idx] += 1
            _retry_scheduled()
            submit_single(idx)
            return True
        if on_error == "raise":
            raise TaskError(f"{error}\n{traceback}")
        finish(idx, TaskFailure(
            index=idx, config=configs[idx], error=error,
            traceback=traceback, attempts=attempts[idx]))
        return False

    try:
        for pos in range(0, len(todo), chunksize):
            submit_chunk(tuple(todo[pos:pos + chunksize]))
        while pending:
            done, _ = wait(set(pending), timeout=_wait_budget(
                pending, started, timeout), return_when=FIRST_COMPLETED)
            now = time.monotonic()
            for fut in done:
                idxs = pending.pop(fut)
                started.pop(fut, None)
                try:
                    payload = fut.result()
                except BrokenProcessPool:
                    # The pool is dead (a worker was killed); rescue every
                    # unfinished task — this unit included — serially.
                    rest = list(idxs)
                    for other in pending.values():
                        rest.extend(other)
                    pending.clear()
                    serial_remainder(rest)
                    return
                except Exception as exc:
                    # A single task's exception, or a chunk that failed
                    # wholesale (e.g. its result would not pickle):
                    # apply the retry budget to every task it carried.
                    # Fatal errors never retry — they are deterministic
                    # functions of the config.
                    for idx in idxs:
                        if attempts[idx] <= retries and not is_fatal(exc):
                            attempts[idx] += 1
                            _retry_scheduled()
                            submit_single(idx)
                            continue
                        if on_error == "raise":
                            raise
                        finish(idx, _failure(idx, configs[idx], exc,
                                             attempts[idx]))
                    continue
                if len(idxs) == 1:
                    finish(idxs[0], payload)
                    continue
                for idx, item in zip(idxs, payload):
                    if isinstance(item, _ChunkItemError):
                        item_failed(idx, item.error, item.traceback,
                                    fatal=item.fatal)
                    else:
                        finish(idx, item)
            if timeout is None:
                continue
            # Clock units from when a worker picked them up, not from
            # submission, so queueing behind a full pool never counts.
            for fut in list(pending):
                if started[fut] is None and fut.running():
                    started[fut] = now
                began = started[fut]
                if began is None or now - began <= timeout:
                    continue
                idxs = pending.pop(fut)
                started.pop(fut, None)
                fut.cancel()  # running futures ignore this; slot is lost
                any_timeout = True
                get_registry().counter(
                    "repro_runner_timeouts_total",
                    "Submitted units that exceeded the per-task timeout.",
                    volatile=True).inc()
                if len(idxs) > 1:
                    # A multi-task chunk timed out as a unit, but at most
                    # one of its tasks need be hung: resubmit each as its
                    # own single (no attempt consumed) so the hung one
                    # times out alone and its chunk-mates still complete.
                    for idx in idxs:
                        submit_single(idx)
                    continue
                for idx in idxs:
                    if attempts[idx] <= retries:
                        attempts[idx] += 1
                        _retry_scheduled()
                        submit_single(idx)
                        continue
                    timeout_exc = TimeoutError(
                        f"task exceeded timeout={timeout:g}s")
                    if on_error == "raise":
                        raise timeout_exc
                    finish(idx, _failure(idx, configs[idx], timeout_exc,
                                         attempts[idx], timed_out=True))
    except (KeyboardInterrupt, SystemExit):
        # Interrupted mid-sweep: futures that already completed hold
        # results the next run would otherwise recompute.  Harvest them
        # into the result slots (and the cache) before propagating, so
        # Ctrl-C loses at most the tasks still in flight.
        _harvest_finished(pending, configs, results, reporter, cache)
        any_timeout = True  # don't block shutdown on still-running tasks
        raise
    finally:
        # A hung worker would block a waiting shutdown forever; abandon
        # the pool instead once any task has timed out.
        pool.shutdown(wait=not any_timeout, cancel_futures=True)


def _harvest_finished(
    pending: dict,
    configs: list,
    results: list,
    reporter: Optional[ProgressReporter],
    cache,
) -> None:
    """Collect every already-completed pending future's results.

    Used on interrupt: ``_record`` writes each harvested result through
    the cache, so an interrupted-then-rerun sweep resumes from exactly
    where the workers got to.  Errors are ignored — the interrupt is
    already propagating and a rerun will retry them.
    """
    for fut, idxs in pending.items():
        if not fut.done() or fut.cancelled():
            continue
        try:
            payload = fut.result()
        except BaseException:
            continue
        items = [payload] if len(idxs) == 1 else payload
        for idx, item in zip(idxs, items):
            if not isinstance(item, _ChunkItemError):
                results[idx] = _record(reporter, cache, configs[idx], item)


def _wait_budget(
    pending: dict[Future, tuple[int, ...]],
    started: dict[Future, Optional[float]],
    timeout: Optional[float],
) -> Optional[float]:
    """How long the pool loop may sleep before it must look around.

    Without an armed ``timeout`` there is nothing to police: block
    until a future completes (None → fully event-driven, no wake-ups).
    With one, sleep exactly until the earliest running unit's deadline;
    while any unit is still queued, cap the sleep at a short poll so
    its queued→running transition is noticed promptly.
    """
    if timeout is None:
        return None
    now = time.monotonic()
    deadlines = [began + timeout for began in started.values()
                 if began is not None]
    waiting_to_start = any(started[fut] is None for fut in pending)
    if not deadlines:
        return _POLL_INTERVAL if waiting_to_start else None
    budget = max(0.0, min(deadlines) - now)
    if waiting_to_start:
        budget = min(budget, _POLL_INTERVAL)
    return budget


def sweep(
    base: ScenarioConfig,
    axis: str,
    values: Iterable,
    *,
    processes: Optional[int] = None,
    progress: Union[bool, ProgressReporter] = False,
    on_error: str = "raise",
    retries: int = 0,
    timeout: Optional[float] = None,
    cache=None,
    chunksize: Optional[int] = None,
    fleet_dir=None,
    **fixed,
) -> list[tuple[object, RunMetrics]]:
    """Vary one config field over ``values`` (other overrides in ``fixed``).

    Returns ``[(value, metrics), ...]`` in value order; with
    ``on_error="record"`` a crashed run's metrics slot holds its
    :class:`TaskFailure` instead.  ``cache``/``chunksize``/``fleet_dir``
    pass through to :func:`run_many`.
    """
    values = list(values)
    configs = [base.with_(**{axis: v}, **fixed) for v in values]
    results = run_many(configs, processes=processes, progress=progress,
                       label=f"sweep:{axis}", on_error=on_error,
                       retries=retries, timeout=timeout,
                       cache=cache, chunksize=chunksize,
                       fleet_dir=fleet_dir)
    return list(zip(values, results))
