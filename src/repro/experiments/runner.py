"""Parallel parameter sweeps, hardened against worker failure.

Figure reproductions are sweeps of independent simulations (scheme ×
load × seed ...), i.e. embarrassingly parallel.  Per the HPC guides,
parallelism lives at the *task* level: each worker process runs one
complete scenario (pure Python event loop, no shared state) and returns
only the small picklable :class:`~repro.metrics.collector.RunMetrics`.

``processes=0`` forces serial in-process execution — useful under pytest
and on machines where fork is restricted; the default uses up to
``os.cpu_count()`` workers but never more than the number of tasks.

Resilience
----------
A multi-hour sweep must never die because one scenario crashed.  Three
layers of protection:

* **Crash isolation** (``on_error="record"``): a task that keeps raising
  after its retry budget yields a :class:`TaskFailure` row in its result
  slot instead of aborting the sweep; every finished task's result is
  preserved.  The default ``on_error="raise"`` re-raises the first
  failure (after its retries) for callers that prefer fail-fast.
* **Bounded retries** (``retries=N``): each task is attempted up to
  ``1 + N`` times before it is declared failed — transient failures
  (OOM-killed worker, flaky filesystem) don't waste the whole row.
* **Pool fallback**: if worker processes cannot be created at all (no
  ``fork`` on the platform, sandboxed environments) or the pool breaks
  mid-flight (a worker was killed), remaining tasks transparently run
  serially in-process rather than failing.

``timeout=T`` additionally bounds each parallel task's *running* wall
time; a task still running ``T`` seconds after its worker picked it up
is recorded as a timeout failure (its worker process cannot be
reclaimed, so prefer generous timeouts).  Serial execution cannot be
preempted and ignores ``timeout``.
"""

from __future__ import annotations

import os
import time
import traceback as _traceback
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence, Union

from repro.errors import ConfigError
from repro.experiments.common import ScenarioConfig, run_scenario_metrics
from repro.metrics.collector import RunMetrics
from repro.obs.progress import ProgressReporter

__all__ = ["TaskFailure", "run_many", "sweep", "partition_results"]

#: how often the pool loop wakes to check timeouts / task starts (seconds)
_POLL_INTERVAL = 0.05


@dataclass
class TaskFailure:
    """One task that exhausted its attempts, recorded in the sweep output.

    Stored in the failed task's result slot when ``on_error="record"``,
    so the caller can report the row (scheme, load, seed, ...) alongside
    what went wrong instead of losing the whole sweep.
    """

    index: int
    config: object
    error: str
    traceback: str = ""
    attempts: int = 1
    timed_out: bool = False

    def __str__(self) -> str:  # pragma: no cover - formatting aid
        cause = "timed out" if self.timed_out else self.error
        return f"task {self.index} failed after {self.attempts} attempt(s): {cause}"


def partition_results(
    results: Sequence[Union[RunMetrics, TaskFailure]],
) -> tuple[list[RunMetrics], list[TaskFailure]]:
    """Split a ``run_many(on_error="record")`` result list.

    Returns ``(successes, failures)``; successes keep their relative
    order, and each failure still knows its original ``index``.
    """
    ok: list[RunMetrics] = []
    bad: list[TaskFailure] = []
    for r in results:
        (bad if isinstance(r, TaskFailure) else ok).append(r)
    return ok, bad


def _failure(index: int, config: object, exc: BaseException,
             attempts: int, *, timed_out: bool = False) -> TaskFailure:
    return TaskFailure(
        index=index,
        config=config,
        error=f"{type(exc).__name__}: {exc}",
        traceback="".join(
            _traceback.format_exception(type(exc), exc, exc.__traceback__)),
        attempts=attempts,
        timed_out=timed_out,
    )


def _run_serial_task(
    runner: Callable,
    config: object,
    index: int,
    retries: int,
    on_error: str,
) -> Union[RunMetrics, TaskFailure]:
    """One task in-process, with the retry budget applied."""
    for attempt in range(1, retries + 2):
        try:
            return runner(config)
        except Exception as exc:
            if attempt <= retries:
                continue
            if on_error == "raise":
                raise
            return _failure(index, config, exc, attempt)
    raise AssertionError("unreachable")  # pragma: no cover


def run_many(
    configs: Sequence[ScenarioConfig],
    *,
    processes: Optional[int] = None,
    runner: Callable[[ScenarioConfig], RunMetrics] = run_scenario_metrics,
    progress: Union[bool, ProgressReporter] = False,
    label: str = "run_many",
    on_error: str = "raise",
    retries: int = 0,
    timeout: Optional[float] = None,
) -> list:
    """Run scenarios, preserving input order.

    Parameters
    ----------
    processes:
        ``0`` or ``1`` → serial.  ``None`` → ``min(cpu_count, len(configs))``.
    runner:
        The per-config function; replaceable for tests.
    progress:
        ``True`` prints a per-task heartbeat with ETA to stderr; pass a
        :class:`~repro.obs.ProgressReporter` to control the destination.
    label:
        Heartbeat prefix when ``progress`` is ``True``.
    on_error:
        ``"raise"`` (default): re-raise a task's error once its retries
        are exhausted.  ``"record"``: put a :class:`TaskFailure` in the
        failed task's result slot and keep going — no crash ever aborts
        the sweep (see :func:`partition_results`).
    retries:
        Extra attempts per task before it counts as failed (default 0).
    timeout:
        Per-task running-time bound in seconds (parallel mode only; see
        the module docstring for semantics and caveats).
    """
    if on_error not in ("raise", "record"):
        raise ConfigError(f"on_error must be 'raise' or 'record', got {on_error!r}")
    if retries < 0:
        raise ConfigError(f"retries must be >= 0, got {retries!r}")
    if timeout is not None and timeout <= 0:
        raise ConfigError(f"timeout must be positive, got {timeout!r}")
    configs = list(configs)
    if not configs:
        return []
    reporter: Optional[ProgressReporter] = None
    if isinstance(progress, ProgressReporter):
        reporter = progress
    elif progress:
        reporter = ProgressReporter(len(configs), label=label)
    if processes is None:
        processes = min(os.cpu_count() or 1, len(configs))
    if processes <= 1 or len(configs) == 1:
        results = []
        for i, c in enumerate(configs):
            results.append(_run_serial_task(runner, c, i, retries, on_error))
            if reporter is not None:
                reporter.task_done()
        return results
    return _run_pool(
        configs, processes, runner, reporter,
        on_error=on_error, retries=retries, timeout=timeout,
    )


def _run_pool(
    configs: list,
    processes: int,
    runner: Callable,
    reporter: Optional[ProgressReporter],
    *,
    on_error: str,
    retries: int,
    timeout: Optional[float],
) -> list:
    """The parallel path: retries, timeouts, and pool-failure fallback."""
    try:
        pool = ProcessPoolExecutor(max_workers=processes)
    except (OSError, ImportError, NotImplementedError):
        # No worker processes on this platform/sandbox: degrade to serial.
        return [
            _done(reporter, _run_serial_task(runner, c, i, retries, on_error))
            for i, c in enumerate(configs)
        ]
    results: list = [None] * len(configs)
    attempts = [1] * len(configs)
    started: dict[Future, Optional[float]] = {}
    pending: dict[Future, int] = {}
    any_timeout = False

    def submit(idx: int) -> None:
        fut = pool.submit(runner, configs[idx])
        pending[fut] = idx
        started[fut] = None

    def serial_remainder(indices: Iterable[int]) -> None:
        for idx in sorted(indices):
            results[idx] = _done(
                reporter,
                _run_serial_task(runner, configs[idx], idx, retries, on_error))

    try:
        for i in range(len(configs)):
            submit(i)
        while pending:
            # Without a timeout to police there is nothing to poll for;
            # block until something completes.
            poll = _POLL_INTERVAL if timeout is not None else None
            done, _ = wait(set(pending), timeout=poll,
                           return_when=FIRST_COMPLETED)
            now = time.monotonic()
            for fut in done:
                idx = pending.pop(fut)
                started.pop(fut, None)
                try:
                    results[idx] = fut.result()
                except BrokenProcessPool:
                    # The pool is dead (a worker was killed); rescue every
                    # unfinished task — this one included — serially.
                    rest = [idx] + sorted(pending.values())
                    pending.clear()
                    serial_remainder(rest)
                    return results
                except Exception as exc:
                    if attempts[idx] <= retries:
                        attempts[idx] += 1
                        submit(idx)
                        continue
                    if on_error == "raise":
                        raise
                    results[idx] = _failure(idx, configs[idx], exc, attempts[idx])
                if reporter is not None and results[idx] is not None:
                    reporter.task_done()
            if timeout is None:
                continue
            # Clock tasks from when a worker picked them up, not from
            # submission, so queueing behind a full pool never counts.
            for fut in list(pending):
                if started[fut] is None and fut.running():
                    started[fut] = now
                began = started[fut]
                if began is None or now - began <= timeout:
                    continue
                idx = pending.pop(fut)
                started.pop(fut, None)
                fut.cancel()  # running futures ignore this; slot is lost
                any_timeout = True
                if attempts[idx] <= retries:
                    attempts[idx] += 1
                    submit(idx)
                    continue
                timeout_exc = TimeoutError(
                    f"task exceeded timeout={timeout:g}s")
                if on_error == "raise":
                    raise timeout_exc
                results[idx] = _done(
                    reporter,
                    _failure(idx, configs[idx], timeout_exc, attempts[idx],
                             timed_out=True))
        return results
    finally:
        # A hung worker would block a waiting shutdown forever; abandon
        # the pool instead once any task has timed out.
        pool.shutdown(wait=not any_timeout, cancel_futures=True)


def _done(reporter: Optional[ProgressReporter], result):
    if reporter is not None:
        reporter.task_done()
    return result


def sweep(
    base: ScenarioConfig,
    axis: str,
    values: Iterable,
    *,
    processes: Optional[int] = None,
    progress: Union[bool, ProgressReporter] = False,
    on_error: str = "raise",
    retries: int = 0,
    timeout: Optional[float] = None,
    **fixed,
) -> list[tuple[object, RunMetrics]]:
    """Vary one config field over ``values`` (other overrides in ``fixed``).

    Returns ``[(value, metrics), ...]`` in value order; with
    ``on_error="record"`` a crashed run's metrics slot holds its
    :class:`TaskFailure` instead.
    """
    values = list(values)
    configs = [base.with_(**{axis: v}, **fixed) for v in values]
    results = run_many(configs, processes=processes, progress=progress,
                       label=f"sweep:{axis}", on_error=on_error,
                       retries=retries, timeout=timeout)
    return list(zip(values, results))
