"""Parallel parameter sweeps.

Figure reproductions are sweeps of independent simulations (scheme ×
load × seed ...), i.e. embarrassingly parallel.  Per the HPC guides,
parallelism lives at the *task* level: each worker process runs one
complete scenario (pure Python event loop, no shared state) and returns
only the small picklable :class:`~repro.metrics.collector.RunMetrics`.

``processes=0`` forces serial in-process execution — useful under pytest
and on machines where fork is restricted; the default uses up to
``os.cpu_count()`` workers but never more than the number of tasks.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Optional, Sequence

from repro.experiments.common import ScenarioConfig, run_scenario_metrics
from repro.metrics.collector import RunMetrics

__all__ = ["run_many", "sweep"]


def run_many(
    configs: Sequence[ScenarioConfig],
    *,
    processes: Optional[int] = None,
    runner: Callable[[ScenarioConfig], RunMetrics] = run_scenario_metrics,
) -> list[RunMetrics]:
    """Run scenarios, preserving input order.

    Parameters
    ----------
    processes:
        ``0`` or ``1`` → serial.  ``None`` → ``min(cpu_count, len(configs))``.
    runner:
        The per-config function; replaceable for tests.
    """
    configs = list(configs)
    if not configs:
        return []
    if processes is None:
        processes = min(os.cpu_count() or 1, len(configs))
    if processes <= 1 or len(configs) == 1:
        return [runner(c) for c in configs]
    with ProcessPoolExecutor(max_workers=processes) as pool:
        return list(pool.map(runner, configs))


def sweep(
    base: ScenarioConfig,
    axis: str,
    values: Iterable,
    *,
    processes: Optional[int] = None,
    **fixed,
) -> list[tuple[object, RunMetrics]]:
    """Vary one config field over ``values`` (other overrides in ``fixed``).

    Returns ``[(value, metrics), ...]`` in value order.
    """
    values = list(values)
    configs = [base.with_(**{axis: v}, **fixed) for v in values]
    results = run_many(configs, processes=processes)
    return list(zip(values, results))
