"""Parallel parameter sweeps.

Figure reproductions are sweeps of independent simulations (scheme ×
load × seed ...), i.e. embarrassingly parallel.  Per the HPC guides,
parallelism lives at the *task* level: each worker process runs one
complete scenario (pure Python event loop, no shared state) and returns
only the small picklable :class:`~repro.metrics.collector.RunMetrics`.

``processes=0`` forces serial in-process execution — useful under pytest
and on machines where fork is restricted; the default uses up to
``os.cpu_count()`` workers but never more than the number of tasks.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Callable, Iterable, Optional, Sequence, Union

from repro.experiments.common import ScenarioConfig, run_scenario_metrics
from repro.metrics.collector import RunMetrics
from repro.obs.progress import ProgressReporter

__all__ = ["run_many", "sweep"]


def run_many(
    configs: Sequence[ScenarioConfig],
    *,
    processes: Optional[int] = None,
    runner: Callable[[ScenarioConfig], RunMetrics] = run_scenario_metrics,
    progress: Union[bool, ProgressReporter] = False,
    label: str = "run_many",
) -> list[RunMetrics]:
    """Run scenarios, preserving input order.

    Parameters
    ----------
    processes:
        ``0`` or ``1`` → serial.  ``None`` → ``min(cpu_count, len(configs))``.
    runner:
        The per-config function; replaceable for tests.
    progress:
        ``True`` prints a per-task heartbeat with ETA to stderr; pass a
        :class:`~repro.obs.ProgressReporter` to control the destination.
    label:
        Heartbeat prefix when ``progress`` is ``True``.
    """
    configs = list(configs)
    if not configs:
        return []
    reporter: Optional[ProgressReporter] = None
    if isinstance(progress, ProgressReporter):
        reporter = progress
    elif progress:
        reporter = ProgressReporter(len(configs), label=label)
    if processes is None:
        processes = min(os.cpu_count() or 1, len(configs))
    if processes <= 1 or len(configs) == 1:
        results = []
        for c in configs:
            results.append(runner(c))
            if reporter is not None:
                reporter.task_done()
        return results
    with ProcessPoolExecutor(max_workers=processes) as pool:
        if reporter is None:
            return list(pool.map(runner, configs))
        # submit/as_completed so the heartbeat fires as tasks finish,
        # not in input order; results still come back in input order.
        futures = {pool.submit(runner, c): i for i, c in enumerate(configs)}
        results = [None] * len(configs)  # type: ignore[list-item]
        for fut in as_completed(futures):
            results[futures[fut]] = fut.result()
            reporter.task_done()
        return results


def sweep(
    base: ScenarioConfig,
    axis: str,
    values: Iterable,
    *,
    processes: Optional[int] = None,
    progress: Union[bool, ProgressReporter] = False,
    **fixed,
) -> list[tuple[object, RunMetrics]]:
    """Vary one config field over ``values`` (other overrides in ``fixed``).

    Returns ``[(value, metrics), ...]`` in value order.
    """
    values = list(values)
    configs = [base.with_(**{axis: v}, **fixed) for v in values]
    results = run_many(configs, processes=processes, progress=progress,
                       label=f"sweep:{axis}")
    return list(zip(values, results))
