"""§6.1 basic performance — Figs. 8 and 9.

Time-series comparison of TLB against the baselines on the §4.2
microbenchmark:

* Fig. 8 (short flows): (a) real-time reordering (dup-ACK rate),
  (b) average queueing delay at the sender-leaf uplinks;
* Fig. 9 (long flows): (a) reordering, (b) instantaneous throughput.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.experiments.common import ScenarioConfig, run_scenario
from repro.experiments.report import format_table
from repro.metrics.queueing import queue_wait_series

__all__ = ["BasicSeries", "run_basic", "default_config", "main"]

DEFAULT_SCHEMES = ("ecmp", "rps", "presto", "letflow", "tlb")


@dataclass
class BasicSeries:
    """Per-scheme time series + scalar summaries for Figs. 8–9."""

    scheme: str
    times: np.ndarray = field(repr=False)
    short_dupack_rate: np.ndarray = field(repr=False)   # Fig. 8a
    short_queue_wait: np.ndarray = field(repr=False)    # Fig. 8b (s)
    long_dupack_rate: np.ndarray = field(repr=False)    # Fig. 9a
    long_throughput_bps: np.ndarray = field(repr=False)  # Fig. 9b
    short_afct: float = 0.0
    long_goodput_bps: float = 0.0
    short_dup_ratio: float = 0.0
    long_dup_ratio: float = 0.0
    mean_short_wait: float = 0.0


def default_config(**overrides) -> ScenarioConfig:
    """§6.1 = §4.2 settings with time-series collection enabled."""
    base = dict(
        n_paths=15,
        hosts_per_leaf=110,
        n_short=100,
        n_long=3,
        short_window=0.02,
        buffer_packets=512,
        horizon=1.0,
        timeseries=True,
        trace_kinds=("dequeue",),
    )
    base.update(overrides)
    return ScenarioConfig(**base)


def run_basic(
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    config: Optional[ScenarioConfig] = None,
) -> list[BasicSeries]:
    """Run each scheme on the same workload and extract the four series.

    All series share the config's ``bin_width`` so they align bin-for-bin.
    """
    config = config if config is not None else default_config()
    out: list[BasicSeries] = []
    for scheme in schemes:
        res = run_scenario(config.with_(scheme=scheme))
        m = res.metrics
        dupacks = res.collector.dupacks
        thr = res.collector.throughput
        waits = queue_wait_series(
            res.tracer, res.registry, bin_width=config.bin_width, short=True,
            short_threshold=config.short_threshold,
            port_prefix=f"{res.net.leaves[0].name}->",
        )
        n_bins = max(len(dupacks.short_series()), len(thr.long_series()),
                     len(waits), 1)

        def _pad(arr: np.ndarray) -> np.ndarray:
            if arr.size >= n_bins:
                return arr[:n_bins]
            return np.pad(arr, (0, n_bins - arr.size))

        wait_means = waits.means()
        out.append(BasicSeries(
            scheme=scheme,
            times=(np.arange(n_bins) + 0.5) * dupacks.short_series().bin_width,
            short_dupack_rate=_pad(dupacks.short_rate()),
            short_queue_wait=_pad(np.nan_to_num(wait_means)),
            long_dupack_rate=_pad(dupacks.long_rate()),
            long_throughput_bps=_pad(thr.long_rate_bps()),
            short_afct=m.short_fct.mean,
            long_goodput_bps=m.long_goodput_bps,
            short_dup_ratio=m.short_reordering.dup_ack_ratio,
            long_dup_ratio=m.long_reordering.dup_ack_ratio,
            mean_short_wait=float(np.nanmean(wait_means)) if len(waits) else 0.0,
        ))
    return out


def main(config: Optional[ScenarioConfig] = None) -> str:
    """Run and render the Fig. 8/9 summary tables."""
    series = run_basic(config=config)
    t8 = format_table(
        ["scheme", "short_dup_ratio", "mean_queue_wait_us", "short_afct_ms"],
        [[s.scheme, s.short_dup_ratio, s.mean_short_wait * 1e6,
          s.short_afct * 1e3] for s in series],
        title="Fig. 8 — short-flow reordering and queueing delay",
    )
    t9 = format_table(
        ["scheme", "long_dup_ratio", "long_goodput_Mbps", "peak_inst_Mbps"],
        [[s.scheme, s.long_dup_ratio, s.long_goodput_bps / 1e6,
          float(s.long_throughput_bps.max()) / 1e6 if s.long_throughput_bps.size
          else 0.0] for s in series],
        title="Fig. 9 — long-flow reordering and instantaneous throughput",
    )
    return t8 + "\n\n" + t9


if __name__ == "__main__":  # pragma: no cover
    print(main())
