"""Plain-text tables — the benches print the same rows the figures plot."""

from __future__ import annotations

import math
from typing import Any, Sequence

__all__ = ["format_table", "fmt"]


def fmt(value: Any, precision: int = 3) -> str:
    """Render one cell: floats get fixed precision, NaN prints as '-'."""
    if isinstance(value, float):
        if math.isnan(value):
            return "-"
        if value != 0 and (abs(value) >= 10**6 or abs(value) < 10**-precision):
            return f"{value:.{precision}e}"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    title: str | None = None,
    precision: int = 3,
) -> str:
    """Column-aligned text table.

    >>> print(format_table(["a", "b"], [[1, 2.5]]))
    a  b
    -  -----
    1  2.500
    """
    cells = [[fmt(c, precision) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
