"""§2.2 motivation study — Figs. 3 and 4.

One fixed rerouting granularity for *all* flows (flow-level, flowlet-
level, packet-level), measured on the 15-path microbenchmark:

* Fig. 3 (short flows): (a) CDF of the queue length each short-flow
  packet finds at the sender-leaf uplinks, (b) duplicate-ACK ratio,
  (c) FCT CDF;
* Fig. 4 (long flows): (a) uplink utilisation, (b) out-of-order ratio,
  (c) mean long-flow throughput.

The paper's observations this should reproduce: queue lengths and tail
FCT grow with granularity (flow worst), reordering grows as granularity
shrinks (packet worst), and long flows never exceed a fraction of
capacity under any *fixed* granularity — the dilemma TLB resolves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.experiments.common import ScenarioConfig, run_scenario
from repro.experiments.report import format_table
from repro.metrics.queueing import queue_length_samples
from repro.metrics.fct import fct_cdf, split_by_size
from repro.units import microseconds

__all__ = ["GRANULARITIES", "MotivationRow", "run_motivation", "main"]

#: The three §2 granularities, expressed as scheme configurations.
GRANULARITIES: dict[str, tuple[str, dict]] = {
    "flow": ("fixed", {"granularity_bytes": None}),
    "flowlet": ("letflow", {"flowlet_timeout": microseconds(150)}),
    "packet": ("rps", {}),
}


@dataclass
class MotivationRow:
    """Everything Figs. 3–4 plot for one granularity."""

    granularity: str
    # Fig. 3a
    qlen_p50: float
    qlen_p90: float
    qlen_p99: float
    qlen_cdf: tuple[np.ndarray, np.ndarray] = field(repr=False)
    # Fig. 3b
    short_dup_ack_ratio: float = 0.0
    # Fig. 3c
    short_afct: float = 0.0
    short_fct_p99: float = 0.0
    short_fct_cdf: tuple[np.ndarray, np.ndarray] = field(default=None, repr=False)
    # Fig. 4a
    util_mean: float = 0.0
    util_min: float = 0.0
    util_max: float = 0.0
    # Fig. 4b
    long_ooo_ratio: float = 0.0
    # Fig. 4c
    long_goodput_bps: float = 0.0


def default_config(**overrides) -> ScenarioConfig:
    """The §2.2 scenario: 15 paths, 100 short + 5 long flows, 1 Gbps."""
    base = dict(
        n_paths=15,
        hosts_per_leaf=110,
        n_short=100,
        n_long=5,
        short_window=0.01,
        buffer_packets=256,
        horizon=1.0,
        trace_kinds=("enqueue",),
    )
    base.update(overrides)
    return ScenarioConfig(**base)


def run_motivation(
    config: Optional[ScenarioConfig] = None,
    granularities: Optional[dict[str, tuple[str, dict]]] = None,
) -> list[MotivationRow]:
    """Run the granularity family; one row per granularity."""
    config = config if config is not None else default_config()
    granularities = granularities if granularities is not None else GRANULARITIES
    rows: list[MotivationRow] = []
    for label, (scheme, params) in granularities.items():
        res = run_scenario(config.with_(scheme=scheme, scheme_params=dict(params)))
        stats = res.registry.all_stats()
        short, long_ = split_by_size(stats, config.short_threshold)
        qlens = queue_length_samples(
            res.tracer, res.registry, short=True,
            short_threshold=config.short_threshold,
            port_prefix=f"{res.net.leaves[0].name}->",
        )
        if qlens.size:
            p50, p90, p99 = np.percentile(qlens, [50, 90, 99])
            qcdf = (np.sort(qlens).astype(float),
                    np.arange(1, qlens.size + 1) / qlens.size)
        else:
            p50 = p90 = p99 = float("nan")
            qcdf = (np.array([]), np.array([]))
        m = res.metrics
        rows.append(MotivationRow(
            granularity=label,
            qlen_p50=float(p50), qlen_p90=float(p90), qlen_p99=float(p99),
            qlen_cdf=qcdf,
            short_dup_ack_ratio=m.short_reordering.dup_ack_ratio,
            short_afct=m.short_fct.mean,
            short_fct_p99=m.short_fct.p99,
            short_fct_cdf=fct_cdf(short),
            util_mean=m.uplink_spread["mean_utilization"],
            util_min=m.uplink_spread["min_utilization"],
            util_max=m.uplink_spread["max_utilization"],
            long_ooo_ratio=m.long_reordering.out_of_order_ratio,
            long_goodput_bps=m.long_goodput_bps,
        ))
    return rows


def main(config: Optional[ScenarioConfig] = None) -> str:
    """Run and render the Fig. 3/4 tables."""
    rows = run_motivation(config)
    t3 = format_table(
        ["granularity", "qlen_p50", "qlen_p90", "qlen_p99",
         "dup_ack_ratio", "afct_ms", "fct_p99_ms"],
        [[r.granularity, r.qlen_p50, r.qlen_p90, r.qlen_p99,
          r.short_dup_ack_ratio, r.short_afct * 1e3, r.short_fct_p99 * 1e3]
         for r in rows],
        title="Fig. 3 — impact of switching granularity on short flows",
    )
    t4 = format_table(
        ["granularity", "util_mean", "util_min", "util_max",
         "long_ooo_ratio", "long_goodput_Mbps"],
        [[r.granularity, r.util_mean, r.util_min, r.util_max,
          r.long_ooo_ratio, r.long_goodput_bps / 1e6]
         for r in rows],
        title="Fig. 4 — impact of switching granularity on long flows",
    )
    return t3 + "\n\n" + t4


if __name__ == "__main__":  # pragma: no cover
    print(main())
