"""The scenario harness: one config in, one measured run out.

:class:`ScenarioConfig` captures everything a run needs — fabric shape,
scheme, workload, transport, seed, horizon — as a flat, picklable
dataclass so parameter sweeps can ship configs to worker processes.
:func:`run_scenario` assembles and executes it.

The simulation is driven in slices: schemes with periodic timers (TLB)
keep the event heap non-empty forever, so "run until the workload
completes" is implemented as bounded slices with a completion check in
between, capped by ``config.horizon``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Any, Optional

from repro.errors import ConfigError
from repro.faults import FaultInjector, FaultSchedule
from repro.lb.registry import attach_scheme
from repro.metrics.collector import MetricsCollector, RunMetrics
from repro.net.asymmetry import LinkOverride, apply_asymmetry
from repro.net.topology import LeafSpineConfig, Network, build_leaf_spine
from repro.sim.trace import NullTracer, RecordingTracer
from repro.transport.dctcp import DctcpSender
from repro.transport.flow import FlowRegistry
from repro.transport.tcp import TcpConfig, TcpSender
from repro.units import Gbps, KB, MB, microseconds
from repro.workload.deadlines import UniformDeadlines
from repro.workload.distributions import (
    NAMED_DISTRIBUTIONS,
    FlowSizeDistribution,
    UniformSize,
    named_distribution,
)
from repro.workload.generator import PoissonWorkload, StaticWorkload, WorkloadResult
from repro.workload.scenarios import LEGACY_WORKLOADS, parse_scenario

__all__ = ["ScenarioConfig", "ScenarioResult", "run_scenario", "run_scenario_metrics"]

_SIZE_DISTRIBUTIONS = NAMED_DISTRIBUTIONS

_TRANSPORTS = {
    "dctcp": DctcpSender,
    "tcp": TcpSender,
}


@dataclass(frozen=True)
class ScenarioConfig:
    """One simulation run, fully specified and picklable.

    Defaults reproduce the paper's §4.2/§6.1 microbenchmark: a two-leaf
    fabric with 15 spines at 1 Gbps, 100 µs RTT, DCTCP, 100 short + 3
    long flows, deadlines U[5 ms, 25 ms].
    """

    # scheme ------------------------------------------------------------
    scheme: str = "tlb"
    scheme_params: dict = field(default_factory=dict)

    # fabric --------------------------------------------------------------
    n_leaves: int = 2
    n_paths: int = 15
    hosts_per_leaf: int = 8
    link_rate: float = Gbps(1)
    rtt: float = microseconds(100)
    buffer_packets: int = 256
    ecn_threshold: Optional[int] = 20
    #: (leaf, spine, rate_factor, extra_delay) tuples for asymmetry
    link_overrides: tuple = ()
    #: dynamic fault schedule in :mod:`repro.faults` spec form, e.g.
    #: ``"0.1:link_down:leaf0-spine1;0.3:link_up:leaf0-spine1"``;
    #: empty string disables injection
    faults: str = ""
    #: delay between a fault hitting the data plane and balancers being
    #: notified (the PathStateObserver hook); 0 = oracle control plane
    fault_detection_delay: float = 0.0

    # workload ------------------------------------------------------------
    #: ``"static"`` | ``"poisson"`` | a :mod:`repro.workload.scenarios`
    #: spec, e.g. ``"zipf:s=1.2"`` or ``"mix:tenantA@0.7+incast@0.3"``
    workload: str = "static"
    # static:
    n_short: int = 100
    n_long: int = 3
    short_size_lo: int = KB(40)
    short_size_hi: int = KB(100)
    long_size: int = MB(10)
    short_window: float = 0.05
    #: one sender and one receiver per flow (the §2.2/§4.2 setup where
    #: congestion is confined to the fabric); needs enough hosts per leaf
    distinct_hosts: bool = False
    # poisson:
    sizes: str = "web_search"  # "web_search" | "data_mining"
    load: float = 0.4
    n_flows: int = 300
    truncate_tail: Optional[float] = None
    # deadlines:
    deadline_lo: float = 5e-3
    deadline_hi: float = 25e-3

    # transport -----------------------------------------------------------
    transport: str = "dctcp"  # "dctcp" | "tcp"
    min_rto: Optional[float] = None  # None → max(10 ms, 3·RTT)
    rwnd_bytes: int = 64 * 1024

    # run -----------------------------------------------------------------
    seed: int = 1
    horizon: float = 2.0
    slice_width: float = 0.01
    timeseries: bool = False
    #: bin width of the live time series, seconds
    bin_width: float = 0.010
    #: trace kinds to record ("enqueue", "dequeue", "drop", "mark", ...)
    trace_kinds: tuple = ()
    #: profile the run's wall-clock behaviour (events/sec, sim/wall
    #: ratio, peak RSS) into ``RunMetrics.extras``
    telemetry: bool = False
    #: assemble per-flow span forensics (:mod:`repro.obs.spans`) with
    #: deterministic tail sampling; observability-only, cache-neutral
    spans: bool = False
    #: attribute kernel wall time to handler components
    #: (:mod:`repro.obs.profiler`); observability-only, cache-neutral
    profile: bool = False
    #: emit run aggregates (kernel event throughput, flow counts, wall
    #: time) into the process metrics registry
    #: (:mod:`repro.obs.metrics`); observability-only, cache-neutral
    metrics: bool = False
    short_threshold: int = KB(100)

    def __post_init__(self) -> None:
        if self.workload not in LEGACY_WORKLOADS:
            # Parse eagerly (like the fault spec below) so a malformed
            # scenario — or a missing CDF trace file — fails at config
            # time, not inside a worker process half-way through a sweep.
            parse_scenario(self.workload)
        if self.transport not in _TRANSPORTS:
            raise ConfigError(f"unknown transport {self.transport!r}")
        if self.workload != "static" and self.sizes not in _SIZE_DISTRIBUTIONS:
            raise ConfigError(f"unknown size distribution {self.sizes!r}")
        if self.horizon <= 0 or self.slice_width <= 0:
            raise ConfigError("horizon and slice_width must be positive")
        if self.fault_detection_delay < 0:
            raise ConfigError("fault_detection_delay must be >= 0")
        if self.faults:
            # Parse eagerly so a malformed spec fails at config time, not
            # inside a worker process half-way through a sweep.
            FaultSchedule.from_spec(self.faults)

    def with_(self, **changes) -> "ScenarioConfig":
        """A modified copy (sweep convenience)."""
        return replace(self, **changes)

    # -- derived pieces ----------------------------------------------------

    def fabric_config(self) -> LeafSpineConfig:
        return LeafSpineConfig(
            n_leaves=self.n_leaves,
            n_spines=self.n_paths,
            hosts_per_leaf=self.hosts_per_leaf,
            link_rate=self.link_rate,
            rtt=self.rtt,
            buffer_packets=self.buffer_packets,
            ecn_threshold=self.ecn_threshold,
            seed=self.seed,
        )

    def tcp_config(self) -> TcpConfig:
        min_rto = self.min_rto
        if min_rto is None:
            min_rto = max(0.010, 3.0 * self.rtt)
        return TcpConfig(
            min_rto=min_rto,
            rwnd_bytes=self.rwnd_bytes,
            ecn_capable=(self.transport == "dctcp"),
        )

    def size_distribution(self) -> FlowSizeDistribution:
        return named_distribution(self.sizes, truncate_at=self.truncate_tail)


@dataclass
class ScenarioResult:
    """A finished run with full access to its internals.

    Not picklable (holds the live network); parameter sweeps use
    :func:`run_scenario_metrics`, which returns just the
    :class:`~repro.metrics.collector.RunMetrics`.
    """

    config: ScenarioConfig
    metrics: RunMetrics
    net: Network
    registry: FlowRegistry
    collector: MetricsCollector
    workload: WorkloadResult
    balancers: dict
    tracer: Any
    #: the armed :class:`~repro.faults.FaultInjector`, or None
    injector: Any = None
    #: the finalized :class:`~repro.obs.FlightRecorder`, or None
    recorder: Any = None
    #: the finalized :class:`~repro.obs.spans.SpanBuffer`, or None
    spans: Any = None
    #: the :class:`~repro.obs.profiler.EngineProfiler`, or None
    profiler: Any = None

    @property
    def completed_all(self) -> bool:
        """Whether every flow delivered all data within the horizon."""
        return all(s.completed is not None for s in self.registry.all_stats())


def _build_network(config: ScenarioConfig, tracer=None):
    if tracer is None:
        tracer = RecordingTracer(set(config.trace_kinds)) if config.trace_kinds \
            else NullTracer()
    net = build_leaf_spine(config.fabric_config(), tracer=tracer)
    if config.link_overrides:
        overrides = [LinkOverride(*ov) for ov in config.link_overrides]
        apply_asymmetry(net, overrides)
    return net, tracer


def _install_workload(config: ScenarioConfig, net, registry) -> WorkloadResult:
    sender_cls = _TRANSPORTS[config.transport]
    deadlines = UniformDeadlines(
        config.deadline_lo, config.deadline_hi, config.short_threshold)
    if config.workload == "static":
        wl = StaticWorkload(
            net, registry,
            n_short=config.n_short,
            n_long=config.n_long,
            short_sizes=UniformSize(config.short_size_lo, config.short_size_hi),
            long_size=config.long_size,
            short_window=config.short_window,
            deadlines=deadlines,
            sender_cls=sender_cls,
            tcp_config=config.tcp_config(),
            distinct_hosts=config.distinct_hosts,
        )
    elif config.workload == "poisson":
        wl = PoissonWorkload(
            net, registry,
            sizes=config.size_distribution(),
            load=config.load,
            n_flows=config.n_flows,
            deadlines=deadlines,
            sender_cls=sender_cls,
            tcp_config=config.tcp_config(),
        )
    else:
        scenario = parse_scenario(config.workload)
        return scenario.install(net, registry, config,
                                sender_cls=sender_cls,
                                tcp_config=config.tcp_config())
    return wl.install()


def run_scenario(
    config: ScenarioConfig, *, tracer=None, recorder=None, spans=None
) -> ScenarioResult:
    """Build, run and measure one scenario.

    Runs in ``slice_width`` steps until either every flow has delivered
    all its data or ``config.horizon`` simulated seconds elapse.

    Parameters
    ----------
    tracer:
        Optional trace sink installed across the fabric, overriding the
        config-derived one (e.g. a :class:`~repro.obs.JsonlTracer`; the
        caller keeps ownership and closes it).
    recorder:
        Optional :class:`~repro.obs.FlightRecorder`.  When given, it is
        attached to the built fabric (sample timer, q_th audit hooks,
        FCT subscription) and its queueing-delay tap is tee'd into the
        trace stream; it is stopped and finalized before returning.
        ``None`` (the default) leaves every run path untouched.
    spans:
        Optional :class:`~repro.obs.spans.SpanBuffer`, overriding the
        one ``config.spans`` would build.  It is installed as a trace
        sink, attached to the registry/balancers, and finalized before
        returning (the caller saves it).
    """
    if spans is None and config.spans:
        from repro.obs.spans import SpanBuffer

        spans = SpanBuffer(config.seed, short_threshold=config.short_threshold)
    # Assemble the trace sink stack.  A lone sink is installed directly
    # (no tee indirection on the hot path); several are tee'd.
    sinks = []
    base = tracer
    if base is None and config.trace_kinds:
        base = RecordingTracer(set(config.trace_kinds))
    if base is not None:
        sinks.append(base)
    if spans is not None:
        sinks.append(spans)
    if recorder is not None:
        sinks.append(recorder.wait_tap())
    if len(sinks) == 1:
        tracer = sinks[0]
    elif sinks:
        from repro.obs.tracers import TeeTracer

        tracer = TeeTracer(*sinks)
    else:
        tracer = None
    net, tracer = _build_network(config, tracer)
    # If the run dies mid-flight, flush durable sinks so the trace tail
    # (the part forensics needs) still reaches disk.
    net.sim.add_cleanup_hook(tracer.flush)
    registry = FlowRegistry()
    collector = MetricsCollector(
        registry,
        short_threshold=config.short_threshold,
        bin_width=config.bin_width,
        timeseries=config.timeseries,
    )
    workload = _install_workload(config, net, registry)
    balancers = attach_scheme(net, config.scheme, **config.scheme_params)
    injector = None
    if config.faults:
        # Armed after the balancers so PathStateObserver notifications
        # find them attached.
        injector = FaultInjector(
            net, FaultSchedule.from_spec(config.faults),
            detection_delay=config.fault_detection_delay,
        ).arm()
    if recorder is not None:
        recorder.attach(net, registry=registry, balancers=balancers,
                        short_threshold=config.short_threshold)
    if spans is not None:
        spans.attach(registry, balancers)

    sim = net.sim
    profiler = None
    if config.profile:
        from repro.obs.profiler import EngineProfiler

        profiler = EngineProfiler().install(sim)
    telemetry = None
    if config.telemetry:
        from repro.obs.telemetry import RunTelemetry

        telemetry = RunTelemetry(sim).start()
    pending = {f.id for f in workload.flows}
    done_ids: set[int] = set()
    registry.subscribe_completion(lambda s: done_ids.add(s.flow.id))
    wall0 = time.perf_counter()
    t = 0.0
    while t < config.horizon and len(done_ids) < len(pending):
        t = min(t + config.slice_width, config.horizon)
        sim.run(until=t)
    wall = time.perf_counter() - wall0
    if telemetry is not None:
        telemetry.stop()

    metrics = collector.finalize(
        net, scheme=config.scheme, horizon=sim.now, balancers=balancers)
    metrics.extras["completed_all"] = len(done_ids) >= len(pending)
    metrics.extras["seed"] = config.seed
    metrics.extras["events"] = sim.events_processed
    metrics.extras["long_reroutes"] = sum(
        getattr(lb, "long_reroutes", 0) for lb in balancers.values())
    if injector is not None:
        metrics.extras["faults_applied"] = injector.summary()
        metrics.extras["path_events"] = sum(
            lb.path_events for lb in balancers.values())
    if telemetry is not None:
        metrics.extras.update(telemetry.as_extras())
    if profiler is not None:
        metrics.extras["profile"] = profiler.report(top=16)
    if recorder is not None:
        recorder.stop()
        recorder.finalize(scheme=config.scheme, seed=config.seed, horizon=sim.now)
    if spans is not None:
        spans.finalize(horizon=sim.now)
        metrics.extras["spans"] = spans.extras()
    if config.metrics:
        # Aggregate counts only, emitted once per run — the kernel hot
        # loop stays uninstrumented.  Wall time is volatile by nature
        # and flagged so, keeping metrics.json byte-comparable.
        from repro.obs.metrics import get_registry

        reg = get_registry()
        reg.counter("repro_sim_runs_total",
                    "Completed simulation runs.").inc(scheme=config.scheme)
        reg.counter("repro_sim_events_total",
                    "Kernel events processed, summed per run."
                    ).inc(sim.events_processed, scheme=config.scheme)
        reg.counter("repro_sim_flows_total",
                    "Flows installed by the workload."
                    ).inc(len(pending), scheme=config.scheme)
        reg.counter("repro_sim_flows_completed_total",
                    "Flows that delivered all data within the horizon."
                    ).inc(len(done_ids), scheme=config.scheme)
        reg.histogram("repro_sim_wall_seconds",
                      "Wall-clock time of the event loop per run.",
                      volatile=True).observe(wall, scheme=config.scheme)
    tracer.flush()
    return ScenarioResult(
        config=config,
        metrics=metrics,
        net=net,
        registry=registry,
        collector=collector,
        workload=workload,
        balancers=balancers,
        tracer=tracer,
        injector=injector,
        recorder=recorder,
        spans=spans,
        profiler=profiler,
    )


def run_scenario_metrics(config: ScenarioConfig) -> RunMetrics:
    """Sweep-friendly wrapper: run and return only the picklable metrics."""
    return run_scenario(config).metrics
