"""Dynamic-failure experiments: the paper's §7 asymmetry, made mid-run.

Figs. 16–17 degrade two leaf–spine links *before* traffic starts.  This
driver asks the harder production question: what happens when a link
fails **while traffic is flowing** and comes back later?  Reordering-
prone schemes (RPS, Presto) and static hashing (ECMP) keep feeding the
dead path until the control plane notices; congestion-aware schemes
(CONGA, TLB, Hermes) steer around it and re-admit it on recovery.

The default scenario fails one seed-chosen sender-side leaf–spine link
at t = 0.1 s and recovers it at t = 0.3 s (the ISSUE-2 demo), comparing
all schemes on identical workloads (paired seeds).  The sweep runs with
crash isolation (``on_error="record"`` + one retry), so a crashed or
wedged worker yields a reported failure row, never a dead sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.experiments.asymmetry import degraded_pair
from repro.experiments.common import ScenarioConfig
from repro.experiments.report import format_table
from repro.experiments.runner import TaskFailure, run_many

__all__ = [
    "FaultRow",
    "DEFAULT_SCHEMES",
    "fault_demo_config",
    "default_fault_spec",
    "run_fault_comparison",
    "tabulate",
    "main",
]

DEFAULT_SCHEMES = ("ecmp", "rps", "presto", "letflow", "conga", "hermes", "tlb")


def fault_demo_config(**overrides) -> ScenarioConfig:
    """A fast two-leaf scenario sized so a 0.1–0.3 s outage bites.

    Microbenchmark fabric (1 Gbps, 100 µs RTT) with the short-flow burst
    stretched across the outage window and long flows pinned throughout.
    """
    base = dict(
        n_paths=6,
        hosts_per_leaf=8,
        n_short=60,
        n_long=3,
        short_window=0.4,
        horizon=2.0,
    )
    base.update(overrides)
    return ScenarioConfig(**base)


def default_fault_spec(
    config: ScenarioConfig,
    *,
    down_at: float = 0.1,
    up_at: float = 0.3,
    mode: str = "drop",
) -> str:
    """Fail-and-recover one seed-chosen sender-side leaf–spine link.

    Reuses :func:`~repro.experiments.asymmetry.degraded_pair` so the
    *same* link fails for every scheme at a given seed — the paired
    comparison the paper's methodology requires — and the dynamic run
    degrades exactly the link the static Figs. 16–17 runs would have.
    """
    leaf, spine = degraded_pair(config, count=1)[0]
    down = f"{down_at:g}:link_down:{leaf}-{spine}"
    if mode != "drop":
        down += f":{mode}"
    return f"{down};{up_at:g}:link_up:{leaf}-{spine}"


@dataclass(frozen=True)
class FaultRow:
    """One scheme's fate under the dynamic-failure scenario."""

    scheme: str
    completed_all: bool
    stuck_flows: int
    short_afct: float
    long_goodput_bps: float
    deadline_miss: float
    link_downs: int
    link_ups: int
    error: str = ""

    @property
    def failed(self) -> bool:
        """Whether this row records a crashed run, not metrics."""
        return bool(self.error)


def run_fault_comparison(
    spec: Optional[str] = None,
    *,
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    config: Optional[ScenarioConfig] = None,
    processes: Optional[int] = None,
    retries: int = 1,
    cache=None,
) -> list[FaultRow]:
    """Run every scheme through the same fault schedule.

    Crashed runs become rows with ``error`` set (``on_error="record"``)
    rather than killing the comparison.
    """
    base = config if config is not None else fault_demo_config()
    if spec is None:
        spec = default_fault_spec(base)
    configs = [base.with_(scheme=s, faults=spec) for s in schemes]
    results = run_many(configs, processes=processes,
                       on_error="record", retries=retries, label="faults",
                       cache=cache)
    rows = []
    for s, m in zip(schemes, results):
        if isinstance(m, TaskFailure):
            rows.append(FaultRow(
                scheme=s, completed_all=False, stuck_flows=-1,
                short_afct=float("nan"), long_goodput_bps=float("nan"),
                deadline_miss=float("nan"), link_downs=0, link_ups=0,
                error=m.error,
            ))
            continue
        applied = m.extras.get("faults_applied", {})
        rows.append(FaultRow(
            scheme=s,
            completed_all=bool(m.extras.get("completed_all", False)),
            stuck_flows=m.all_fct.n_flows - m.all_fct.n_completed,
            short_afct=m.short_fct.mean,
            long_goodput_bps=m.long_goodput_bps,
            deadline_miss=m.deadline_miss,
            link_downs=int(applied.get("link_down", 0)),
            link_ups=int(applied.get("link_up", 0)),
        ))
    return rows


def tabulate(rows: Sequence[FaultRow], spec: str) -> str:
    """Render the comparison (plus any failed rows) as a text table."""
    ok = [r for r in rows if not r.failed]
    table = format_table(
        ["scheme", "done", "stuck", "afct_ms", "long_mbps", "miss_%",
         "downs", "ups"],
        [[r.scheme, int(r.completed_all), r.stuck_flows,
          r.short_afct * 1e3, r.long_goodput_bps / 1e6,
          r.deadline_miss * 100, r.link_downs, r.link_ups]
         for r in ok],
        title=f"Dynamic link failure — faults: {spec}",
    )
    failed = [r for r in rows if r.failed]
    if failed:
        lines = [f"  {r.scheme}: {r.error}" for r in failed]
        table += "\n\nfailed runs (reported, not fatal):\n" + "\n".join(lines)
    return table


def main(spec: Optional[str] = None,
         config: Optional[ScenarioConfig] = None,
         cache=None) -> str:
    """Run the dynamic-failure comparison and render it."""
    base = config if config is not None else fault_demo_config()
    if spec is None:
        spec = default_fault_spec(base)
    rows = run_fault_comparison(spec, config=base, cache=cache)
    return tabulate(rows, spec)


if __name__ == "__main__":  # pragma: no cover
    import sys

    print(main(sys.argv[1] if len(sys.argv) > 1 else None))
