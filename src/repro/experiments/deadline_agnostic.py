"""§6.3 deadline-agnostic TLB — Fig. 12.

When applications expose no deadlines, TLB falls back to a fixed ``D``
chosen as a percentile of the *statistical* deadline distribution.  The
figure sweeps that choice (5th, 25th, 50th, 75th percentile of the
U[5 ms, 25 ms] distribution → 6, 10, 15, 20 ms) over load, on the web
search workload, and shows the 25th percentile is the sweet spot: tight
percentiles protect short flows but strangle long-flow throughput
(TLB-5th); lax ones miss deadlines (TLB-75th).

The switches run with ``use_deadline_info=False`` — they never see the
per-flow deadlines, which exist only to *measure* misses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.experiments.common import ScenarioConfig
from repro.experiments.largescale import default_config as websearch_config
from repro.experiments.report import format_table
from repro.experiments.runner import run_many
from repro.workload.deadlines import UniformDeadlines

__all__ = ["AgnosticRow", "run_percentile_sweep", "main", "DEFAULT_PERCENTILES"]

DEFAULT_PERCENTILES = (5.0, 25.0, 50.0, 75.0)
DEFAULT_LOADS = (0.2, 0.4, 0.6, 0.8)


@dataclass(frozen=True)
class AgnosticRow:
    """One (percentile, load) cell of Fig. 12."""

    percentile: float
    assumed_deadline: float
    load: float
    short_afct: float
    short_p99: float
    deadline_miss: float
    long_goodput_bps: float
    #: long-flow path switches across the run — the mechanism the
    #: percentile modulates (laxer deadline => smaller q_th => more)
    long_reroutes: int = 0


def run_percentile_sweep(
    config: Optional[ScenarioConfig] = None,
    *,
    percentiles: Sequence[float] = DEFAULT_PERCENTILES,
    loads: Sequence[float] = DEFAULT_LOADS,
    processes: Optional[int] = None,
    cache=None,
) -> list[AgnosticRow]:
    """Run TLB-p for each percentile and load (web-search workload)."""
    base = config if config is not None else websearch_config("web_search")
    dist = UniformDeadlines(base.deadline_lo, base.deadline_hi)
    grid: list[tuple[float, float, float]] = []
    configs: list[ScenarioConfig] = []
    for p in percentiles:
        d = dist.percentile(p)
        for load in loads:
            grid.append((p, d, load))
            configs.append(base.with_(
                scheme="tlb",
                scheme_params={
                    "use_deadline_info": False,
                    "default_deadline": d,
                },
                load=load,
            ))
    metrics = run_many(configs, processes=processes, cache=cache)
    return [
        AgnosticRow(
            percentile=p,
            assumed_deadline=d,
            load=load,
            short_afct=m.short_fct.mean,
            short_p99=m.short_fct.p99,
            deadline_miss=m.deadline_miss,
            long_goodput_bps=m.long_goodput_bps,
            long_reroutes=int(m.extras.get("long_reroutes", 0)),
        )
        for (p, d, load), m in zip(grid, metrics)
    ]


def tabulate(rows: Sequence[AgnosticRow]) -> str:
    """Render the four Fig. 12 panels."""
    percentiles = sorted({r.percentile for r in rows})
    loads = sorted({r.load for r in rows})
    cell = {(r.percentile, r.load): r for r in rows}
    headers = ["load"] + [f"TLB-{int(p)}th" for p in percentiles]
    panels = [
        ("(a) AFCT of short flows (ms)", lambda r: r.short_afct * 1e3),
        ("(b) 99th percentile FCT (ms)", lambda r: r.short_p99 * 1e3),
        ("(c) missed deadlines (%)", lambda r: r.deadline_miss * 100),
        ("(d) throughput of long flows (Mbps)", lambda r: r.long_goodput_bps / 1e6),
    ]
    out = []
    for title, getter in panels:
        table_rows = [
            [load] + [getter(cell[(p, load)]) for p in percentiles]
            for load in loads
        ]
        out.append(format_table(headers, table_rows, title=f"Fig. 12 {title}"))
    return "\n\n".join(out)


def main(config: Optional[ScenarioConfig] = None, cache=None) -> str:
    """Run the Fig. 12 sweep and render it."""
    return tabulate(run_percentile_sweep(config, cache=cache))


if __name__ == "__main__":  # pragma: no cover
    print(main())
