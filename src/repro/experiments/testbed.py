"""§7 testbed-scale experiments — Figs. 13 and 14.

The paper's Mininet/P4/BMv2 testbed runs 10 equal-cost paths at 20 Mbps
with 1 ms per-link delay, 100 short flows (<100 KB) + 4 long flows
(>5 MB), deadlines U[2 s, 6 s], and a 15 ms update interval / flowlet
timeout.  We run the same parameters on the simulator (the substitution
recorded in DESIGN.md) and report, as the paper does, results
*normalised to TLB*:

* Fig. 13 — varying the number of short flows: (a) normalised AFCT of
  short flows, (b) average throughput of long flows;
* Fig. 14 — varying the number of long flows, same two panels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.experiments.common import ScenarioConfig
from repro.experiments.report import format_table
from repro.experiments.runner import run_many
from repro.units import KB, MB, Mbps, milliseconds

__all__ = [
    "TestbedRow",
    "testbed_config",
    "run_flowcount_sweep",
    "normalise_to",
    "main",
]

DEFAULT_SCHEMES = ("ecmp", "rps", "presto", "letflow", "tlb")


def testbed_config(**overrides) -> ScenarioConfig:
    """The §7 testbed parameters.

    The per-link delay is 1 ms → a 4-hop one-way path gives an 8 ms
    round-trip propagation delay.  The update interval and flowlet
    timeout are both 15 ms; deadlines are U[2 s, 6 s] and the TLB
    default deadline is their 25th percentile (3 s), all per §7.
    """
    base = dict(
        n_paths=10,
        hosts_per_leaf=110,
        link_rate=Mbps(20),
        rtt=milliseconds(8),
        buffer_packets=256,
        ecn_threshold=10,
        n_short=100,
        n_long=4,
        long_size=MB(5),
        short_size_lo=KB(40),
        short_size_hi=KB(100),
        short_window=2.0,
        deadline_lo=2.0,
        deadline_hi=6.0,
        horizon=60.0,
        slice_width=0.25,
        min_rto=0.2,
    )
    base.update(overrides)
    return ScenarioConfig(**base)


def scheme_params_for(scheme: str) -> dict:
    """§7 timing parameters for each scheme (15 ms interval/timeout)."""
    if scheme == "tlb":
        return {
            "update_interval": milliseconds(15),
            "default_deadline": 3.0,  # 25th pct of U[2 s, 6 s]
        }
    if scheme in ("letflow", "conga"):
        return {"flowlet_timeout": milliseconds(15)}
    return {}


@dataclass(frozen=True)
class TestbedRow:
    """One (scheme, x) cell of Fig. 13 or 14."""

    scheme: str
    x: int
    short_afct: float
    long_goodput_bps: float
    deadline_miss: float


def run_flowcount_sweep(
    axis: str,
    values: Sequence[int],
    *,
    config: Optional[ScenarioConfig] = None,
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    processes: Optional[int] = None,
    cache=None,
) -> list[TestbedRow]:
    """Sweep ``axis`` in {"n_short" (Fig. 13), "n_long" (Fig. 14)}."""
    if axis not in ("n_short", "n_long"):
        raise ValueError(f"axis must be n_short or n_long, got {axis!r}")
    base = config if config is not None else testbed_config()
    grid = [(s, v) for s in schemes for v in values]
    configs = [
        base.with_(scheme=s, scheme_params=scheme_params_for(s), **{axis: int(v)})
        for s, v in grid
    ]
    metrics = run_many(configs, processes=processes, cache=cache)
    return [
        TestbedRow(
            scheme=s,
            x=int(v),
            short_afct=m.short_fct.mean,
            long_goodput_bps=m.long_goodput_bps,
            deadline_miss=m.deadline_miss,
        )
        for (s, v), m in zip(grid, metrics)
    ]


def normalise_to(rows: Sequence[TestbedRow], reference: str = "tlb") -> dict:
    """Per-x AFCT ratios scheme/reference (the paper's normalisation)."""
    ref = {r.x: r for r in rows if r.scheme == reference}
    out: dict[tuple[str, int], float] = {}
    for r in rows:
        base = ref.get(r.x)
        if base is not None and base.short_afct == base.short_afct:
            out[(r.scheme, r.x)] = r.short_afct / base.short_afct
    return out


def tabulate(rows: Sequence[TestbedRow], axis: str) -> str:
    """Render the two panels (normalised AFCT, long throughput)."""
    schemes = sorted({r.scheme for r in rows})
    xs = sorted({r.x for r in rows})
    cell = {(r.scheme, r.x): r for r in rows}
    norm = normalise_to(rows)
    fig = "13" if axis == "n_short" else "14"
    t_a = format_table(
        [axis] + list(schemes),
        [[x] + [norm.get((s, x), float("nan")) for s in schemes] for x in xs],
        title=f"Fig. {fig} (a) — AFCT of short flows, normalised to TLB",
    )
    t_b = format_table(
        [axis] + list(schemes),
        [[x] + [cell[(s, x)].long_goodput_bps / 1e6 for s in schemes] for x in xs],
        title=f"Fig. {fig} (b) — average throughput of long flows (Mbps)",
    )
    return t_a + "\n\n" + t_b


def main(axis: str = "n_short",
         values: Optional[Sequence[int]] = None,
         config: Optional[ScenarioConfig] = None,
         cache=None) -> str:
    """Run one testbed sweep and render it."""
    if values is None:
        values = (60, 100, 140) if axis == "n_short" else (2, 4, 6)
    rows = run_flowcount_sweep(axis, values, config=config, cache=cache)
    return tabulate(rows, axis)


if __name__ == "__main__":  # pragma: no cover
    import sys

    print(main(sys.argv[1] if len(sys.argv) > 1 else "n_short"))
