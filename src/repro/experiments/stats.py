"""Multi-seed replication: means and confidence intervals.

Single-seed comparisons can mislead — a lucky hash layout flatters
ECMP, an unlucky burst penalises LetFlow.  This module replicates a
scenario across seeds and reports per-metric means with Student-t
confidence intervals, plus a paired comparison helper (same seeds, two
schemes) whose interval is over the per-seed differences — much tighter
than comparing two independent means, because the workload is identical
per seed by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np
from scipy import stats as sps

from repro.errors import ConfigError
from repro.experiments.common import ScenarioConfig
from repro.experiments.runner import run_many
from repro.metrics.collector import RunMetrics

__all__ = ["MetricCI", "replicate", "paired_comparison", "DEFAULT_METRICS"]

#: metric name -> extractor over RunMetrics
DEFAULT_METRICS: dict[str, Callable[[RunMetrics], float]] = {
    "short_afct": lambda m: m.short_fct.mean,
    "short_p99": lambda m: m.short_fct.p99,
    "deadline_miss": lambda m: m.deadline_miss,
    "long_goodput_bps": lambda m: m.long_goodput_bps,
    "short_dup_ratio": lambda m: m.short_reordering.dup_ack_ratio,
}


@dataclass(frozen=True)
class MetricCI:
    """Mean with a two-sided Student-t confidence interval."""

    name: str
    n: int
    mean: float
    ci_low: float
    ci_high: float

    @property
    def half_width(self) -> float:
        return (self.ci_high - self.ci_low) / 2.0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}: {self.mean:.6g} ± {self.half_width:.2g} (n={self.n})"


def _ci(name: str, samples: np.ndarray, confidence: float) -> MetricCI:
    samples = samples[np.isfinite(samples)]
    n = samples.size
    if n == 0:
        nan = float("nan")
        return MetricCI(name, 0, nan, nan, nan)
    mean = float(samples.mean())
    if n == 1:
        return MetricCI(name, 1, mean, mean, mean)
    sem = float(samples.std(ddof=1)) / np.sqrt(n)
    t = float(sps.t.ppf((1 + confidence) / 2.0, df=n - 1))
    return MetricCI(name, n, mean, mean - t * sem, mean + t * sem)


def replicate(
    config: ScenarioConfig,
    seeds: Sequence[int],
    *,
    metrics: Optional[dict[str, Callable[[RunMetrics], float]]] = None,
    confidence: float = 0.95,
    processes: Optional[int] = None,
    cache=None,
) -> dict[str, MetricCI]:
    """Run ``config`` once per seed; CI per metric."""
    if not seeds:
        raise ConfigError("need at least one seed")
    if not 0 < confidence < 1:
        raise ConfigError("confidence must be in (0, 1)")
    metrics = metrics if metrics is not None else DEFAULT_METRICS
    runs = run_many([config.with_(seed=s) for s in seeds],
                    processes=processes, cache=cache)
    out: dict[str, MetricCI] = {}
    for name, extract in metrics.items():
        samples = np.asarray([extract(m) for m in runs], dtype=float)
        out[name] = _ci(name, samples, confidence)
    return out


def paired_comparison(
    config: ScenarioConfig,
    scheme_a: str,
    scheme_b: str,
    seeds: Sequence[int],
    *,
    metric: Callable[[RunMetrics], float] = DEFAULT_METRICS["short_afct"],
    confidence: float = 0.95,
    processes: Optional[int] = None,
    cache=None,
) -> MetricCI:
    """CI on the per-seed difference ``metric(A) − metric(B)``.

    Negative means scheme A is smaller (better, for FCT-like metrics).
    The pairing works because same-seed runs share the exact workload.
    """
    if not seeds:
        raise ConfigError("need at least one seed")
    configs = []
    for s in seeds:
        configs.append(config.with_(scheme=scheme_a, seed=s))
        configs.append(config.with_(scheme=scheme_b, seed=s))
    runs = run_many(configs, processes=processes, cache=cache)
    diffs = np.asarray([
        metric(runs[2 * i]) - metric(runs[2 * i + 1])
        for i in range(len(seeds))
    ], dtype=float)
    return _ci(f"{scheme_a}-minus-{scheme_b}", diffs, confidence)
