"""Hot-path micro-benchmarks (``repro bench --micro``).

Three seeded scenarios pin the simulator's per-event and per-packet
cost, each reporting wall-clock throughput **and** a determinism
checksum over its simulated outcome:

* ``event_storm`` — pure kernel churn: self-rescheduling actors that
  arm-and-cancel a timeout around every firing, the exact pattern
  retransmission timers impose on the calendar (schedule + cancel per
  event, lazy-deleted garbage accumulating in the heap).
* ``port_saturation`` — a single :class:`~repro.net.port.Port` driven
  at 1.25x line rate: serialisation events, ECN marks and drop-tail
  losses; pins the per-packet cost of the data path.
* ``leaf_spine`` — a reduced end-to-end scenario (DCTCP + TLB on the
  paper's two-leaf fabric) profiled with
  :class:`~repro.obs.telemetry.RunTelemetry`.

Throughput numbers scale with ``--micro-scale`` and are machine
dependent, so regressions against a committed baseline only *warn*.
The checksums come from fixed-size probes that do not scale with the
budget: they hash the simulated outcome (completion behaviour, packet
and byte counters, final clock) and must be **identical** across
machines, budgets and optimisation passes — any drift means an
"optimisation" changed simulated behaviour and hard-fails the gate
(see :func:`compare_to_baseline` and the ``perf-smoke`` CI job).

``BENCH_pr4.json`` is the committed baseline produced by this module;
refresh it with ``repro bench --micro --json
benchmarks/results/BENCH_pr4.json`` after an intentional
behaviour-changing fix (see docs/architecture.md, "Performance").
"""

from __future__ import annotations

import hashlib
import json
import time
from pathlib import Path
from typing import Optional, Sequence

import random

from repro.errors import ConfigError
from repro.sim.engine import Simulator
from repro.sim.rng import derive_seed

__all__ = [
    "run_microbench",
    "compare_to_baseline",
    "write_microbench_json",
    "format_rows",
    "SCENARIOS",
]

#: Microseconds — local to avoid importing units into the inner loops.
_US = 1e-6


def _checksum(payload: dict) -> str:
    """Stable short hash of a simulated outcome (no wall-clock inputs)."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def _make_profiler(profile: bool):
    """One profiler shared across a scenario's repeats (shares stay ratios).

    Only the *measured* runs are profiled; the fixed-size determinism
    probes always run on the unprofiled fast path so their checksums
    stay comparable to unprofiled baselines.
    """
    if not profile:
        return None
    from repro.obs.profiler import EngineProfiler

    return EngineProfiler()


# -- event storm --------------------------------------------------------


class _StormActor:
    """One self-rescheduling callback with RTO-style timeout churn."""

    __slots__ = ("sim", "rng", "remaining", "timeout_ev", "timeout_fires")

    def __init__(self, sim: Simulator, rng, fires: int):
        self.sim = sim
        self.rng = rng
        self.remaining = fires
        self.timeout_ev = None
        self.timeout_fires = 0

    def fire(self) -> None:
        if self.timeout_ev is not None:
            self.timeout_ev.cancel()
            self.timeout_ev = None
        self.remaining -= 1
        if self.remaining <= 0:
            return
        # The timeout outlives the gap to the next firing, so it is
        # cancelled (never fires) — pure lazy-deletion garbage, exactly
        # like a retransmit timer under a healthy ACK clock.
        self.timeout_ev = self.sim.call_later(80 * _US, self._timeout)
        self.sim.call_later((2 + 10 * self.rng.random()) * _US, self.fire)

    def _timeout(self) -> None:
        self.timeout_ev = None
        self.timeout_fires += 1


def _run_event_storm(seed: int, n_actors: int, fires: int, profiler=None) -> dict:
    sim = Simulator()
    if profiler is not None:
        sim.set_profiler(profiler)
    # stdlib Random: a numpy Generator's scalar random() costs more than
    # a whole kernel event and would mask the thing being measured.
    rng = random.Random(derive_seed(seed, "microbench.storm"))
    actors = [_StormActor(sim, rng, fires) for _ in range(n_actors)]
    for i, actor in enumerate(actors):
        sim.call_later(i * _US, actor.fire)
    t0 = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - t0
    events = sim.events_processed
    return {
        "events": events,
        "wall_s": wall,
        "checksum_payload": {
            "events": events,
            "now_ns": round(sim.now * 1e9),
            "timeout_fires": sum(a.timeout_fires for a in actors),
        },
    }


def _event_storm(seed: int, scale: float, repeats: int, profile: bool = False) -> dict:
    profiler = _make_profiler(profile)
    measured = _best_of(
        repeats,
        lambda: _run_event_storm(seed, 50, max(2, int(600 * scale)),
                                 profiler=profiler))
    probe = _run_event_storm(seed + 1, 20, 200)  # fixed size: scale-free
    row = {
        "scenario": "event_storm",
        "events": measured["events"],
        "wall_s": round(measured["wall_s"], 6),
        "throughput_events_per_s": round(measured["events"] / measured["wall_s"]),
        "checksum": _checksum(probe["checksum_payload"]),
    }
    if profiler is not None:
        row["profile"] = profiler.report(top=8)
    return row


# -- port saturation ----------------------------------------------------


class _CountingSink:
    """Minimal receive() endpoint (mirrors tests.conftest.Sink)."""

    __slots__ = ("name", "received", "bytes")

    def __init__(self) -> None:
        self.name = "sink"
        self.received = 0
        self.bytes = 0

    def receive(self, pkt) -> None:
        self.received += 1
        self.bytes += pkt.size


def _run_port_saturation(seed: int, n_packets: int, profiler=None) -> dict:
    from repro.net.packet import Packet
    from repro.net.port import Port
    from repro.units import Gbps

    sim = Simulator()
    if profiler is not None:
        sim.set_profiler(profiler)
    rng = random.Random(derive_seed(seed, "microbench.port"))
    sink = _CountingSink()
    port = Port(sim, "bench", Gbps(1), 10 * _US, sink,
                buffer_packets=64, ecn_threshold=20)
    gap = port.serialization_delay(1500) * 0.8  # 1.25x line rate
    state = {"sent": 0}

    def feed() -> None:
        pkt = Packet(1, "src", "dst", state["sent"], 1500, ecn_capable=True)
        port.enqueue(pkt)
        state["sent"] += 1
        if state["sent"] < n_packets:
            sim.call_later(gap * (0.9 + 0.2 * rng.random()), feed)

    sim.call_later(0.0, feed)
    t0 = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - t0
    s = port.stats
    return {
        "events": sim.events_processed,
        "packets": s.transmitted,
        "wall_s": wall,
        "checksum_payload": {
            "transmitted": s.transmitted,
            "dropped": s.dropped,
            "ecn_marked": s.ecn_marked,
            "bytes_transmitted": s.bytes_transmitted,
            "received": sink.received,
            "now_ns": round(sim.now * 1e9),
        },
    }


def _port_saturation(seed: int, scale: float, repeats: int,
                     profile: bool = False) -> dict:
    profiler = _make_profiler(profile)
    measured = _best_of(
        repeats,
        lambda: _run_port_saturation(seed, max(100, int(40_000 * scale)),
                                     profiler=profiler))
    probe = _run_port_saturation(seed + 1, 2_000)  # fixed size: scale-free
    row = {
        "scenario": "port_saturation",
        "events": measured["events"],
        "packets": measured["packets"],
        "wall_s": round(measured["wall_s"], 6),
        "throughput_events_per_s": round(measured["events"] / measured["wall_s"]),
        "throughput_packets_per_s": round(measured["packets"] / measured["wall_s"]),
        "checksum": _checksum(probe["checksum_payload"]),
    }
    if profiler is not None:
        row["profile"] = profiler.report(top=8)
    return row


# -- end-to-end leaf–spine ----------------------------------------------

#: metric-name substrings that depend on the machine or the kernel's
#: internal event accounting rather than on simulated behaviour.
_NON_OUTCOME = ("wall", "rss", "per_s", "per_sec", "ratio", "events", "heap")


def _outcome_fields(row: dict) -> dict:
    return {k: v for k, v in row.items()
            if not any(tag in k for tag in _NON_OUTCOME)}


def _run_leaf_spine(seed: int, n_short: int, horizon: float,
                    profile: bool = False) -> dict:
    from repro.experiments.common import ScenarioConfig, run_scenario
    from repro.metrics.export import metrics_to_dict

    config = ScenarioConfig(
        scheme="tlb", seed=seed, n_short=n_short, n_long=2,
        n_paths=8, hosts_per_leaf=8, horizon=horizon, telemetry=True,
        profile=profile)
    result = run_scenario(config)
    row = metrics_to_dict(result.metrics)
    wall = result.metrics.extras["wall_time_s"]
    events = result.metrics.extras["events"]
    packets = sum(p.stats.transmitted
                  for sw in result.net.switches.values()
                  for p in sw.ports.values())
    out = {
        "events": events,
        "packets": packets,
        "wall_s": wall,
        # metrics_to_dict only exports scalar extras, so the nested
        # "profile" dict never reaches the checksum payload.
        "checksum_payload": _outcome_fields(row),
    }
    if result.profiler is not None:
        out["profile"] = result.profiler.report(top=8)
    return out


def _leaf_spine(seed: int, scale: float, repeats: int,
                profile: bool = False) -> dict:
    measured = _best_of(
        repeats,
        lambda: _run_leaf_spine(seed, max(8, int(60 * scale)), 0.5,
                                profile=profile))
    probe = _run_leaf_spine(seed + 1, 16, 0.3)  # fixed size: scale-free
    row = {
        "scenario": "leaf_spine",
        "events": measured["events"],
        "packets": measured["packets"],
        "wall_s": round(measured["wall_s"], 6),
        "throughput_events_per_s": round(measured["events"] / measured["wall_s"]),
        "throughput_packets_per_s": round(measured["packets"] / measured["wall_s"]),
        "checksum": _checksum(probe["checksum_payload"]),
    }
    if "profile" in measured:
        row["profile"] = measured["profile"]
    return row


# -- harness ------------------------------------------------------------

SCENARIOS = {
    "event_storm": _event_storm,
    "port_saturation": _port_saturation,
    "leaf_spine": _leaf_spine,
}


def _best_of(repeats: int, fn):
    """Run ``fn`` ``repeats`` times; keep the fastest wall clock.

    The simulated outcome is seeded and identical across repeats, so
    min-wall is the standard noise-resistant throughput estimate.
    """
    best = None
    for _ in range(max(1, repeats)):
        out = fn()
        if best is None or out["wall_s"] < best["wall_s"]:
            best = out
    return best


def run_microbench(
    scenarios: Sequence[str] = ("event_storm", "port_saturation", "leaf_spine"),
    *,
    seed: int = 1,
    scale: float = 1.0,
    repeats: int = 2,
    profile: bool = False,
) -> list[dict]:
    """Run the selected micro-benchmarks; one flat JSON-able row each.

    With ``profile=True`` every *measured* run goes through
    :class:`~repro.obs.profiler.EngineProfiler` and each row gains a
    nested ``"profile"`` report.  Profiling perturbs wall-clock
    throughput, so profiled rows are for attribution, not for baseline
    comparisons; determinism probes are never profiled and their
    checksums stay baseline-comparable.
    """
    if scale <= 0:
        raise ConfigError(f"--micro-scale must be positive, got {scale!r}")
    unknown = [s for s in scenarios if s not in SCENARIOS]
    if unknown:
        raise ConfigError(f"unknown micro-benchmark scenario(s): {unknown}")
    rows = []
    for name in scenarios:
        row = SCENARIOS[name](seed, scale, repeats, profile)
        row["seed"] = seed
        row["scale"] = scale
        rows.append(row)
    return rows


def compare_to_baseline(rows: list[dict], baseline_rows: list[dict]
                        ) -> tuple[list[str], list[str]]:
    """Annotate ``rows`` with speedups; return (warnings, drift).

    Mutates each row that has a baseline counterpart, adding
    ``baseline_throughput_events_per_s``, ``speedup_events`` (and the
    packet equivalents when present) plus ``checksum_match``.
    ``warnings`` lists wall-clock slowdowns (advisory: machine-
    dependent); ``drift`` lists determinism-checksum mismatches (fatal:
    the simulation's outcome changed).
    """
    by_name = {r.get("scenario"): r for r in baseline_rows}
    warnings: list[str] = []
    drift: list[str] = []
    for row in rows:
        base = by_name.get(row.get("scenario"))
        if base is None:
            continue
        for kind in ("events", "packets"):
            key = f"throughput_{kind}_per_s"
            if key in row and key in base and base[key]:
                speedup = row[key] / base[key]
                row[f"baseline_{key}"] = base[key]
                row[f"speedup_{kind}"] = round(speedup, 3)
                if speedup < 0.9:
                    warnings.append(
                        f"{row['scenario']}: {kind} throughput {row[key]:,} /s is "
                        f"{speedup:.2f}x baseline {base[key]:,} /s")
        if "checksum" in row and "checksum" in base:
            match = row["checksum"] == base["checksum"]
            row["checksum_match"] = match
            if not match:
                drift.append(
                    f"{row['scenario']}: determinism checksum "
                    f"{row['checksum']} != baseline {base['checksum']} — "
                    "the simulated outcome changed")
    return warnings, drift


def write_microbench_json(path: str | Path, rows: list[dict]) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(rows, indent=2) + "\n")
    return path


def format_rows(rows: list[dict]) -> str:
    """Human-readable table for the CLI."""
    lines = []
    for row in rows:
        parts = [f"{row['scenario']:>16}:",
                 f"{row['throughput_events_per_s']:>12,} ev/s"]
        if "throughput_packets_per_s" in row:
            parts.append(f"{row['throughput_packets_per_s']:>11,} pkt/s")
        if "speedup_events" in row:
            parts.append(f"({row['speedup_events']:.2f}x baseline)")
        parts.append(f"[{row['checksum']}]")
        lines.append(" ".join(parts))
    return "\n".join(lines)
