"""§6.2 large-scale tests — Figs. 10 (web search) and 11 (data mining).

Load sweep from 0.1 to 0.8 on a multi-leaf fabric with Poisson arrivals
between random host pairs.  Four panels per workload:

(a) short-flow AFCT, (b) short-flow 99th-percentile FCT,
(c) deadline miss ratio, (d) long-flow throughput —
each as a function of load, for ECMP/RPS/Presto/LetFlow/TLB.

Scale: the paper uses 8 leaves × 8 spines × 256 hosts at 1 Gbps.  The
default here is a reduced fabric (4 × 8 × 32 hosts) and a bounded flow
count so a full sweep stays in CPU-minutes; ``paper_scale_config()``
returns the full-size configuration.  The reproduction target is the
*shape*: TLB's advantage growing with load, LetFlow better at high load
than low, ECMP worst throughout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.experiments.common import ScenarioConfig
from repro.experiments.report import format_table
from repro.experiments.runner import run_many
from repro.metrics.collector import RunMetrics
from repro.units import MB

__all__ = [
    "LoadSweepRow",
    "default_config",
    "paper_scale_config",
    "run_load_sweep",
    "sweep_row",
    "main",
]

DEFAULT_SCHEMES = ("ecmp", "rps", "presto", "letflow", "tlb")
DEFAULT_LOADS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8)


@dataclass(frozen=True)
class LoadSweepRow:
    """One (scheme, load) cell of Figs. 10/11."""

    scheme: str
    load: float
    short_afct: float
    short_p99: float
    deadline_miss: float
    long_goodput_bps: float
    completed_all: bool


def default_config(workload: str = "web_search", **overrides) -> ScenarioConfig:
    """Reduced-scale §6.2 configuration.

    The tail of both distributions is truncated (web search at 3 MB,
    data mining at 10 MB) so single flows do not dominate the runtime;
    the short-flow body — which the FCT panels measure — is untouched.
    """
    base = dict(
        workload="poisson",
        sizes=workload,
        n_leaves=2,
        n_paths=8,
        hosts_per_leaf=32,  # 4:1 oversubscription, as in the paper's fabric
        n_flows=200,
        truncate_tail=MB(3) if workload == "web_search" else MB(10),
        horizon=3.0,
    )
    base.update(overrides)
    return ScenarioConfig(**base)


def paper_scale_config(workload: str = "web_search", **overrides) -> ScenarioConfig:
    """The paper's full §6.2 fabric: 8 leaves, 8 spines, 256 hosts."""
    base = dict(
        workload="poisson",
        sizes=workload,
        n_leaves=8,
        n_paths=8,
        hosts_per_leaf=32,
        n_flows=2000,
        truncate_tail=None,
        horizon=10.0,
    )
    base.update(overrides)
    return ScenarioConfig(**base)


def run_load_sweep(
    config: Optional[ScenarioConfig] = None,
    *,
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    loads: Sequence[float] = DEFAULT_LOADS,
    processes: Optional[int] = None,
    progress: bool = False,
    cache=None,
) -> list[LoadSweepRow]:
    """The full (scheme × load) grid, parallelised across processes.

    ``cache`` (a :class:`~repro.cache.ResultCache`) makes re-runs of an
    unchanged grid resolve from disk instead of re-simulating.
    """
    config = config if config is not None else default_config()
    grid = [(s, l) for s in schemes for l in loads]
    configs = [config.with_(scheme=s, load=l) for s, l in grid]
    metrics = run_many(configs, processes=processes, progress=progress,
                       label="load_sweep", cache=cache)
    return [
        sweep_row(s, l, m) for (s, l), m in zip(grid, metrics)
    ]


def sweep_row(scheme: str, load: float, m: RunMetrics) -> LoadSweepRow:
    """Fold one run's metrics into its (scheme, load) sweep cell."""
    return LoadSweepRow(
        scheme=scheme,
        load=load,
        short_afct=m.short_fct.mean,
        short_p99=m.short_fct.p99,
        deadline_miss=m.deadline_miss,
        long_goodput_bps=m.long_goodput_bps,
        completed_all=bool(m.extras.get("completed_all", False)),
    )


def tabulate(rows: Sequence[LoadSweepRow], workload: str) -> str:
    """Render the four panels as text tables (one row per load)."""
    schemes = sorted({r.scheme for r in rows}, key=lambda s: s)
    loads = sorted({r.load for r in rows})
    cell = {(r.scheme, r.load): r for r in rows}
    panels = [
        ("(a) AFCT of short flows (ms)", lambda r: r.short_afct * 1e3),
        ("(b) 99th percentile FCT of short flows (ms)", lambda r: r.short_p99 * 1e3),
        ("(c) missed deadlines (%)", lambda r: r.deadline_miss * 100),
        ("(d) throughput of long flows (Mbps)", lambda r: r.long_goodput_bps / 1e6),
    ]
    out = []
    for title, getter in panels:
        table_rows = [
            [load] + [getter(cell[(s, load)]) for s in schemes]
            for load in loads
        ]
        out.append(format_table(
            ["load"] + list(schemes), table_rows,
            title=f"Fig. {'10' if workload == 'web_search' else '11'} {title}",
        ))
    return "\n\n".join(out)


def main(workload: str = "web_search",
         config: Optional[ScenarioConfig] = None,
         loads: Sequence[float] = DEFAULT_LOADS,
         cache=None) -> str:
    """Run the sweep and render all four panels."""
    cfg = config if config is not None else default_config(workload)
    rows = run_load_sweep(cfg, loads=loads, cache=cache)
    return tabulate(rows, workload)


if __name__ == "__main__":  # pragma: no cover
    import sys

    print(main(sys.argv[1] if len(sys.argv) > 1 else "web_search"))
