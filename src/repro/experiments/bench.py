"""Benchmark smoke suite: one small recorded run per scheme.

``repro bench`` exists for CI: it runs a reduced-scale scenario per
scheme with telemetry on, emits one flat JSON row per scheme
(``BENCH_pr3.json`` in the workflow), and — for the TLB run — saves a
flight recording and renders its HTML report as a build artefact.

The JSON rows are :func:`~repro.metrics.export.metrics_to_dict` records
plus the telemetry extras (wall time, events/sec, peak RSS), so two
bench files from different commits diff directly with ``repro diff``.

``repro bench --cache-bench`` (:func:`run_cache_bench`) instead times a
representative figure sweep twice through the result cache — cold
(empty cache, everything simulated) then warm (everything served from
disk) — verifies the warm pass is 100 % hits with results identical to
the cold ones, and records both wall times (``BENCH_pr5.json``).
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path
from typing import Optional, Sequence

from repro.experiments.common import ScenarioConfig, run_scenario
from repro.metrics.export import metrics_to_dict
from repro.obs.recorder import FlightRecorder, RecordedRun
from repro.obs.report import write_html_report

__all__ = ["bench_config", "run_bench", "write_bench_json",
           "run_cache_bench", "format_cache_bench",
           "run_spans_smoke", "format_spans_smoke"]

DEFAULT_SCHEMES = ("ecmp", "rps", "tlb")


def bench_config(scheme: str, *, seed: int = 1) -> ScenarioConfig:
    """The reduced-scale smoke scenario (~seconds of wall time)."""
    return ScenarioConfig(
        scheme=scheme, seed=seed, n_short=40, n_long=2,
        n_paths=8, hosts_per_leaf=8, horizon=0.5, telemetry=True)


def run_bench(
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    *,
    seed: int = 1,
    record_scheme: str = "tlb",
    record_path: Optional[str | Path] = None,
    html_path: Optional[str | Path] = None,
) -> list[dict]:
    """Run the smoke suite; returns one flat row per scheme.

    When ``record_scheme`` is among ``schemes``, its run carries a
    :class:`FlightRecorder`; the recording lands at ``record_path`` and,
    if ``html_path`` is given, its dashboard is rendered there.
    """
    rows: list[dict] = []
    for scheme in schemes:
        recorder = None
        if scheme == record_scheme and (record_path or html_path):
            recorder = FlightRecorder()
        result = run_scenario(bench_config(scheme, seed=seed), recorder=recorder)
        row = metrics_to_dict(result.metrics)
        row["seed"] = seed
        rows.append(row)
        if recorder is not None:
            target = Path(record_path) if record_path else None
            if target is None:
                # report-only: keep the recording beside the HTML
                target = Path(html_path).with_suffix(".npz")
            saved = recorder.save(target)
            if html_path:
                write_html_report(RecordedRun.load(saved), html_path,
                                  source=str(saved))
    return rows


def write_bench_json(path: str | Path, rows: list[dict]) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(rows, indent=2))
    return path


#: the cache-bench grid: small enough for CI minutes, large enough that
#: per-task pool IPC and pickle cost are visible in the warm pass
CACHE_BENCH_SCHEMES = ("ecmp", "rps", "tlb")
CACHE_BENCH_LOADS = (0.3, 0.6)


def run_cache_bench(
    *,
    seed: int = 1,
    cache_dir: Optional[str | Path] = None,
    schemes: Sequence[str] = CACHE_BENCH_SCHEMES,
    loads: Sequence[float] = CACHE_BENCH_LOADS,
    n_flows: int = 80,
    processes: Optional[int] = None,
) -> dict:
    """Cold-vs-warm wall time of one representative figure sweep.

    Runs the §6.2-style (scheme × load) grid twice against the same
    cache directory (a throwaway temp dir unless ``cache_dir`` is
    given): first with an empty cache, then again so every row resolves
    from disk.  Returns one flat, ``repro diff``-able row recording both
    wall times, the speedup, the warm pass's hit/miss counts, and
    whether the warm results are byte-identical to the cold ones
    (compared via their canonical JSON export form).
    """
    from repro.cache import ResultCache
    from repro.experiments.largescale import default_config
    from repro.experiments.runner import run_many

    base = default_config("web_search", n_flows=n_flows, seed=seed)
    grid = [(s, l) for s in schemes for l in loads]
    configs = [base.with_(scheme=s, load=l) for s, l in grid]
    root = Path(cache_dir) if cache_dir is not None else Path(
        tempfile.mkdtemp(prefix="repro-cache-bench-"))

    cold_cache = ResultCache(root)
    t0 = time.perf_counter()
    cold = run_many(configs, processes=processes, cache=cold_cache)
    cold_s = time.perf_counter() - t0

    warm_cache = ResultCache(root)
    t0 = time.perf_counter()
    warm = run_many(configs, processes=processes, cache=warm_cache)
    warm_s = time.perf_counter() - t0

    identical = all(
        json.dumps(metrics_to_dict(a), sort_keys=True)
        == json.dumps(metrics_to_dict(b), sort_keys=True)
        for a, b in zip(cold, warm)
    )
    return {
        "bench": "cache_sweep",
        "seed": seed,
        "tasks": len(configs),
        "n_flows": n_flows,
        "cold_wall_s": round(cold_s, 3),
        "warm_wall_s": round(warm_s, 3),
        "speedup": round(cold_s / warm_s, 1) if warm_s > 0 else float("inf"),
        "cold_hits": cold_cache.hits,
        "cold_misses": cold_cache.misses,
        "warm_hits": warm_cache.hits,
        "warm_misses": warm_cache.misses,
        "byte_identical": identical,
    }


def run_spans_smoke(
    *,
    seed: int = 1,
    repeats: int = 3,
    scheme: str = "tlb",
) -> dict:
    """Span-tracing overhead check (``repro bench --spans-smoke``).

    Runs the smoke scenario with spans off and on (best-of-``repeats``
    wall time each), and returns one flat row recording:

    * ``outcome_identical`` / ``events_identical`` — the spans-off and
      spans-on runs must simulate the *same* thing: identical metric
      exports and identical kernel event counts.  Span collection is a
      passive observer; any divergence is a correctness bug and the CI
      gate hard-fails on it.
    * ``overhead_pct`` — relative events/sec cost of collecting spans,
      gated softly in CI (machine-dependent, warn past a threshold).
    """
    base = bench_config(scheme, seed=seed)
    with_spans = base.with_(spans=True)

    def best_of(config: ScenarioConfig) -> dict:
        best = None
        for _ in range(max(1, repeats)):
            result = run_scenario(config)
            wall = result.metrics.extras["wall_time_s"]
            if best is None or wall < best["wall_s"]:
                best = {
                    "wall_s": wall,
                    "events": result.metrics.extras["events"],
                    "row": metrics_to_dict(result.metrics),
                }
        return best

    off = best_of(base)
    on = best_of(with_spans)

    def outcome(row: dict) -> dict:
        # drop machine-dependent telemetry columns before comparing
        return {k: v for k, v in row.items()
                if not any(tag in k for tag in
                           ("wall", "rss", "per_s", "per_sec", "ratio"))}

    eps_off = off["events"] / off["wall_s"] if off["wall_s"] > 0 else 0.0
    eps_on = on["events"] / on["wall_s"] if on["wall_s"] > 0 else 0.0
    # events/sec regression: how much throughput collecting spans costs
    overhead = (1.0 - eps_on / eps_off) * 100 if eps_off > 0 else 0.0
    return {
        "bench": "spans_smoke",
        "scheme": scheme,
        "seed": seed,
        "repeats": repeats,
        "events_off": off["events"],
        "events_on": on["events"],
        "events_identical": off["events"] == on["events"],
        "outcome_identical": outcome(off["row"]) == outcome(on["row"]),
        "events_per_s_off": round(eps_off),
        "events_per_s_on": round(eps_on),
        "overhead_pct": round(max(0.0, overhead), 1),
    }


def format_spans_smoke(row: dict) -> str:
    return (
        f"spans smoke ({row['scheme']}, seed={row['seed']}):\n"
        f"  spans off: {row['events_per_s_off']:>12,} ev/s"
        f" ({row['events_off']:,} events)\n"
        f"  spans on:  {row['events_per_s_on']:>12,} ev/s"
        f" ({row['events_on']:,} events)\n"
        f"  overhead: {row['overhead_pct']:.1f}%,"
        f" events identical: {row['events_identical']},"
        f" outcome identical: {row['outcome_identical']}"
    )


def format_cache_bench(row: dict) -> str:
    return (
        f"cache bench: {row['tasks']} task(s)\n"
        f"  cold: {row['cold_wall_s']:.2f} s"
        f" ({row['cold_misses']} computed)\n"
        f"  warm: {row['warm_wall_s']:.2f} s"
        f" ({row['warm_hits']} hit(s), {row['warm_misses']} miss(es))\n"
        f"  speedup: {row['speedup']:g}x, results identical:"
        f" {row['byte_identical']}"
    )
