"""Benchmark smoke suite: one small recorded run per scheme.

``repro bench`` exists for CI: it runs a reduced-scale scenario per
scheme with telemetry on, emits one flat JSON row per scheme
(``BENCH_pr3.json`` in the workflow), and — for the TLB run — saves a
flight recording and renders its HTML report as a build artefact.

The JSON rows are :func:`~repro.metrics.export.metrics_to_dict` records
plus the telemetry extras (wall time, events/sec, peak RSS), so two
bench files from different commits diff directly with ``repro diff``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Sequence

from repro.experiments.common import ScenarioConfig, run_scenario
from repro.metrics.export import metrics_to_dict
from repro.obs.recorder import FlightRecorder, RecordedRun
from repro.obs.report import write_html_report

__all__ = ["bench_config", "run_bench", "write_bench_json"]

DEFAULT_SCHEMES = ("ecmp", "rps", "tlb")


def bench_config(scheme: str, *, seed: int = 1) -> ScenarioConfig:
    """The reduced-scale smoke scenario (~seconds of wall time)."""
    return ScenarioConfig(
        scheme=scheme, seed=seed, n_short=40, n_long=2,
        n_paths=8, hosts_per_leaf=8, horizon=0.5, telemetry=True)


def run_bench(
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    *,
    seed: int = 1,
    record_scheme: str = "tlb",
    record_path: Optional[str | Path] = None,
    html_path: Optional[str | Path] = None,
) -> list[dict]:
    """Run the smoke suite; returns one flat row per scheme.

    When ``record_scheme`` is among ``schemes``, its run carries a
    :class:`FlightRecorder`; the recording lands at ``record_path`` and,
    if ``html_path`` is given, its dashboard is rendered there.
    """
    rows: list[dict] = []
    for scheme in schemes:
        recorder = None
        if scheme == record_scheme and (record_path or html_path):
            recorder = FlightRecorder()
        result = run_scenario(bench_config(scheme, seed=seed), recorder=recorder)
        row = metrics_to_dict(result.metrics)
        row["seed"] = seed
        rows.append(row)
        if recorder is not None:
            target = Path(record_path) if record_path else None
            if target is None:
                # report-only: keep the recording beside the HTML
                target = Path(html_path).with_suffix(".npz")
            saved = recorder.save(target)
            if html_path:
                write_html_report(RecordedRun.load(saved), html_path,
                                  source=str(saved))
    return rows


def write_bench_json(path: str | Path, rows: list[dict]) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(rows, indent=2))
    return path
