"""Beyond the paper: scheme × workload-scenario grid (``repro figure
workloads``).

The paper's large-scale evaluation (§6.2) fixes the traffic shape and
sweeps load; this driver fixes a moderate load and sweeps the *shape* —
every column is one :mod:`repro.workload.scenarios` spec (Zipf host
popularity, incast fan-in, diurnal curve, hotspot migration, tenant
mixes, empirical CDF files...) and every row one scheme.  Four panels
mirror Figs. 10/11: short-flow AFCT, short-flow p99 FCT, deadline miss
ratio, long-flow goodput.

Workload specs are first-class cache axes, so a swept grid re-runs from
the result cache in milliseconds and a CSV export is byte-identical
across seeded re-runs (the workload-smoke CI job holds this line).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.experiments.common import ScenarioConfig
from repro.experiments.report import format_table
from repro.experiments.runner import run_many
from repro.metrics.collector import RunMetrics
from repro.units import MB

__all__ = [
    "DEFAULT_WORKLOADS",
    "DEFAULT_SCHEMES",
    "WorkloadRow",
    "workloads_config",
    "run_workload_grid",
    "workload_row",
    "tabulate",
    "main",
]

DEFAULT_SCHEMES = ("ecmp", "rps", "tlb")
DEFAULT_WORKLOADS = (
    "websearch",
    "zipf:s=1.2",
    "incast:fanin=16,period=10ms",
    "hotspot:leaves=1,dwell=200ms",
)


@dataclass(frozen=True)
class WorkloadRow:
    """One (scheme, workload-spec) cell of the grid."""

    scheme: str
    workload: str
    short_afct: float
    short_p99: float
    deadline_miss: float
    long_goodput_bps: float
    completed_all: bool


def workloads_config(**overrides) -> ScenarioConfig:
    """Reduced-scale fabric for the scenario grid.

    Four leaves give popularity skew and hotspot rotation room to bite;
    16 hosts per leaf leaves 48 cross-leaf hosts, enough for the
    ``incast:fanin=40`` acceptance shape.  The workload field is set per
    grid cell.
    """
    base = dict(
        workload="websearch",
        n_leaves=4,
        n_paths=4,
        hosts_per_leaf=16,
        load=0.4,
        n_flows=120,
        truncate_tail=MB(3),
        horizon=3.0,
    )
    base.update(overrides)
    return ScenarioConfig(**base)


def run_workload_grid(
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    *,
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    config: Optional[ScenarioConfig] = None,
    processes: Optional[int] = None,
    progress: bool = False,
    cache=None,
) -> list[WorkloadRow]:
    """The (scheme × workload) grid through the shared sweep executor."""
    config = config if config is not None else workloads_config()
    grid = [(s, w) for s in schemes for w in workloads]
    configs = [config.with_(scheme=s, workload=w) for s, w in grid]
    metrics = run_many(configs, processes=processes, progress=progress,
                       label="workloads", cache=cache)
    return [workload_row(s, w, m) for (s, w), m in zip(grid, metrics)]


def workload_row(scheme: str, workload: str, m: RunMetrics) -> WorkloadRow:
    """Fold one run's metrics into its grid cell."""
    return WorkloadRow(
        scheme=scheme,
        workload=workload,
        short_afct=m.short_fct.mean,
        short_p99=m.short_fct.p99,
        deadline_miss=m.deadline_miss,
        long_goodput_bps=m.long_goodput_bps,
        completed_all=bool(m.extras.get("completed_all", False)),
    )


def tabulate(rows: Sequence[WorkloadRow]) -> str:
    """Render the four panels (one row per workload spec)."""
    schemes = sorted({r.scheme for r in rows})
    workloads = list(dict.fromkeys(r.workload for r in rows))
    cell = {(r.scheme, r.workload): r for r in rows}
    panels = [
        ("(a) AFCT of short flows (ms)", lambda r: r.short_afct * 1e3),
        ("(b) 99th percentile FCT of short flows (ms)",
         lambda r: r.short_p99 * 1e3),
        ("(c) missed deadlines (%)", lambda r: r.deadline_miss * 100),
        ("(d) throughput of long flows (Mbps)",
         lambda r: r.long_goodput_bps / 1e6),
    ]
    out = []
    for title, getter in panels:
        table_rows = [
            [w] + [getter(cell[(s, w)]) for s in schemes]
            for w in workloads
        ]
        out.append(format_table(
            ["workload"] + list(schemes), table_rows,
            title=f"Workload scenarios {title}",
        ))
    return "\n\n".join(out)


def main(
    workloads: Optional[Sequence[str]] = None,
    *,
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    config: Optional[ScenarioConfig] = None,
    cache=None,
    csv: Optional[str] = None,
) -> str:
    """Run the grid and render all four panels (optionally CSV out)."""
    specs = tuple(workloads) if workloads else DEFAULT_WORKLOADS
    cfg = config if config is not None else workloads_config()
    grid = [(s, w) for s in schemes for w in specs]
    configs = [cfg.with_(scheme=s, workload=w) for s, w in grid]
    metrics = run_many(configs, label="workloads", cache=cache)
    rows = [workload_row(s, w, m) for (s, w), m in zip(grid, metrics)]
    if csv:
        from repro.metrics.export import write_metrics_csv
        from repro.obs import build_manifest

        extra = {"workloads": {"schemes": list(schemes),
                               "workloads": list(specs)}}
        if cache is not None:
            extra["cache"] = cache.session_summary()
        manifest = build_manifest(configs[0], counters=None, extra=extra)
        write_metrics_csv(
            csv, list(metrics),
            extra_columns=[{"workload": w, "swept_scheme": s}
                           for s, w in grid],
            manifest=manifest)
    return tabulate(rows)


if __name__ == "__main__":  # pragma: no cover
    import sys

    print(main(sys.argv[1:] or None))
