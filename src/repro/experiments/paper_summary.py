"""The paper's headline-claims scorecard, computed in one command.

Runs the §4.2 microbenchmark and the §7 testbed scenario for every
scheme and prints TLB's relative improvements next to the ranges the
paper reports — the table EXPERIMENTS.md's scorecard is built from.

``python -m repro.experiments.paper_summary`` (a few CPU-minutes), or
call :func:`run_summary` with a smaller config.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.experiments.common import ScenarioConfig, run_scenario_metrics
from repro.experiments.report import format_table
from repro.experiments.testbed import scheme_params_for, testbed_config

__all__ = ["ClaimRow", "run_summary", "main"]

BASELINES = ("ecmp", "rps", "presto", "letflow")

#: the paper's claimed TLB improvements (AFCT reduction %, throughput gain %)
PAPER_CLAIMS = {
    "ecmp": ("18-40 %", "45-80 %"),
    "rps": ("6-24 %", "-"),
    "presto": ("5-21 %", "5-22 %"),
    "letflow": ("10-15 %", "20-35 %"),
}


@dataclass(frozen=True)
class ClaimRow:
    """TLB's measured improvement over one baseline in one scenario."""

    scenario: str
    baseline: str
    afct_reduction_pct: float
    throughput_gain_pct: float
    paper_afct: str
    paper_throughput: str


def microbenchmark_config(**overrides) -> ScenarioConfig:
    """The §4.2/§6.1 mixture at reduced scale."""
    base = dict(
        n_paths=8, hosts_per_leaf=60, n_short=50, n_long=4,
        long_size=2_000_000, short_window=0.01, horizon=1.0,
        distinct_hosts=True)
    base.update(overrides)
    return ScenarioConfig(**base)


def run_summary(
    configs: Optional[dict[str, ScenarioConfig]] = None,
    baselines: Sequence[str] = BASELINES,
) -> list[ClaimRow]:
    """Measure TLB vs every baseline in every scenario."""
    if configs is None:
        configs = {
            "microbenchmark": microbenchmark_config(),
            "testbed": testbed_config(
                n_short=60, n_long=4, hosts_per_leaf=80,
                long_size=2_000_000, short_window=0.5, horizon=45.0,
                distinct_hosts=True),
        }
    rows: list[ClaimRow] = []
    for scenario, base in configs.items():
        tlb = run_scenario_metrics(base.with_(
            scheme="tlb", scheme_params=scheme_params_for("tlb")
            if scenario == "testbed" else {}))
        for baseline in baselines:
            m = run_scenario_metrics(base.with_(
                scheme=baseline, scheme_params=scheme_params_for(baseline)
                if scenario == "testbed" else {}))
            afct_red = 100.0 * (1.0 - tlb.short_fct.mean / m.short_fct.mean)
            thr_gain = 100.0 * (tlb.long_goodput_bps / m.long_goodput_bps - 1.0)
            claims = PAPER_CLAIMS.get(baseline, ("-", "-"))
            rows.append(ClaimRow(
                scenario=scenario,
                baseline=baseline,
                afct_reduction_pct=afct_red,
                throughput_gain_pct=thr_gain,
                paper_afct=claims[0],
                paper_throughput=claims[1],
            ))
    return rows


def tabulate(rows: Sequence[ClaimRow]) -> str:
    """Render the scorecard."""
    return format_table(
        ["scenario", "vs", "AFCT_reduction_%", "paper_AFCT",
         "long_thr_gain_%", "paper_thr"],
        [[r.scenario, r.baseline, r.afct_reduction_pct, r.paper_afct,
          r.throughput_gain_pct, r.paper_throughput] for r in rows],
        title="TLB headline claims — measured vs paper (testbed claims "
              "are Fig. 13's bands)",
        precision=1,
    )


def main() -> str:
    """Run both scenarios and render the scorecard."""
    return tabulate(run_summary())


if __name__ == "__main__":  # pragma: no cover
    print(main())
