"""Dependency-free metrics: counters, gauges and histograms with labels.

Every subsystem that measures something registers it here instead of
growing its own ad-hoc counter dict: the cache counts hits and misses,
the runner counts task outcomes, the fleet worker counts claims and
lease renewals, the scenario harness counts kernel events.  One
registry, three instrument kinds, two exposition formats:

``to_prom_text()``
    Prometheus textfile format (``# HELP`` / ``# TYPE`` / samples),
    suitable for a node-exporter textfile collector or plain grepping.
    Includes *everything*, volatile instruments included.

``canonical_json()``
    A deterministic JSON document (sorted keys, fixed separators, no
    timestamps) containing only the **non-volatile** instruments.  Two
    seeded runs over identical starting state produce byte-identical
    documents — the property the result cache and CI diffing rely on.

The volatile flag is the determinism escape hatch: wall-clock timings,
per-worker attribution and anything else that legitimately differs
between two runs of the same seed is registered with ``volatile=True``.
It still shows up in ``metrics.prom`` (where operators want it) but
never in ``metrics.json`` (where byte-comparability rules).

Instruments are cheap (a dict lookup and an add under a lock) but the
simulation hot loop is still off limits — callers emit aggregate counts
*after* a run, never per event.
"""

from __future__ import annotations

import json
import math
import threading
from pathlib import Path
from typing import Iterable, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "parse_prom",
    "DEFAULT_BUCKETS",
    "METRICS_JSON_NAME",
    "METRICS_PROM_NAME",
]

METRICS_JSON_NAME = "metrics.json"
METRICS_PROM_NAME = "metrics.prom"

#: Default histogram buckets (seconds-flavoured, like Prometheus').
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0)

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: dict) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt_value(v: float) -> str:
    """Render a sample value the same way every time (determinism)."""
    if isinstance(v, bool):  # pragma: no cover - defensive
        return "1" if v else "0"
    if isinstance(v, int):
        return str(v)
    if math.isinf(v):
        return "+Inf" if v > 0 else "-Inf"
    if math.isnan(v):  # pragma: no cover - defensive
        return "NaN"
    if float(v).is_integer() and abs(v) < 1e15:
        return str(int(v))
    return repr(float(v))


def _prom_line(name: str, labels: LabelKey, value: float,
               suffix: str = "", extra: LabelKey = ()) -> str:
    pairs = labels + extra
    if pairs:
        body = ",".join(f'{k}="{_escape_label(v)}"' for k, v in pairs)
        return f"{name}{suffix}{{{body}}} {_fmt_value(value)}"
    return f"{name}{suffix} {_fmt_value(value)}"


class _Instrument:
    """Shared label-child plumbing for the three instrument kinds."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", *, volatile: bool = False,
                 lock: Optional[threading.Lock] = None):
        self.name = name
        self.help = help
        self.volatile = volatile
        self._lock = lock or threading.Lock()
        self._children: dict = {}


class Counter(_Instrument):
    """A monotonically increasing sum, optionally split by labels."""

    kind = "counter"

    def inc(self, amount: float = 1, **labels) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = _label_key(labels)
        with self._lock:
            self._children[key] = self._children.get(key, 0) + amount

    def value(self, **labels) -> float:
        with self._lock:
            return self._children.get(_label_key(labels), 0)

    def total(self) -> float:
        """Sum across every label combination."""
        with self._lock:
            return sum(self._children.values())


class Gauge(_Instrument):
    """A value that can go up and down (queue depth, worker count)."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        with self._lock:
            self._children[_label_key(labels)] = value

    def inc(self, amount: float = 1, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            self._children[key] = self._children.get(key, 0) + amount

    def dec(self, amount: float = 1, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        with self._lock:
            return self._children.get(_label_key(labels), 0)


class Histogram(_Instrument):
    """Cumulative-bucket histogram (Prometheus semantics)."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "", *,
                 buckets: Sequence[float] = DEFAULT_BUCKETS,
                 volatile: bool = False,
                 lock: Optional[threading.Lock] = None):
        super().__init__(name, help, volatile=volatile, lock=lock)
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")

    def observe(self, value: float, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = {"counts": [0] * (len(self.buckets) + 1),
                         "sum": 0.0, "count": 0}
                self._children[key] = child
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    child["counts"][i] += 1
                    break
            else:
                child["counts"][-1] += 1  # +Inf bucket
            child["sum"] += value
            child["count"] += 1

    def count(self, **labels) -> int:
        with self._lock:
            child = self._children.get(_label_key(labels))
            return child["count"] if child else 0

    def sum(self, **labels) -> float:
        with self._lock:
            child = self._children.get(_label_key(labels))
            return child["sum"] if child else 0.0


class MetricsRegistry:
    """A named set of instruments with deterministic exposition.

    ``counter``/``gauge``/``histogram`` are get-or-create: calling twice
    with the same name returns the same instrument (and raises if the
    kind changed underneath the name — that is always a bug).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, _Instrument] = {}

    # -- registration ------------------------------------------------------

    def _register(self, cls, name: str, help: str, volatile: bool, **kw):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if existing.kind != cls.kind:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}")
                return existing
            inst = cls(name, help, volatile=volatile, **kw)
            self._instruments[name] = inst
            return inst

    def counter(self, name: str, help: str = "", *,
                volatile: bool = False) -> Counter:
        return self._register(Counter, name, help, volatile)

    def gauge(self, name: str, help: str = "", *,
              volatile: bool = False) -> Gauge:
        return self._register(Gauge, name, help, volatile)

    def histogram(self, name: str, help: str = "", *,
                  buckets: Sequence[float] = DEFAULT_BUCKETS,
                  volatile: bool = False) -> Histogram:
        return self._register(Histogram, name, help, volatile,
                              buckets=buckets)

    def reset(self) -> None:
        """Drop every instrument (tests and long-lived CLI loops)."""
        with self._lock:
            self._instruments.clear()

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._instruments)

    # -- snapshots ---------------------------------------------------------

    def snapshot(self, *, include_volatile: bool = True) -> dict:
        """A plain-dict view: ``{name: {kind, help, volatile, samples}}``.

        Samples are sorted by label key so the snapshot (and everything
        derived from it) is order-independent of instrumentation calls.
        """
        out: dict = {}
        with self._lock:
            instruments = list(self._instruments.items())
        for name, inst in sorted(instruments):
            if inst.volatile and not include_volatile:
                continue
            entry: dict = {"kind": inst.kind, "help": inst.help,
                           "volatile": inst.volatile}
            with inst._lock:
                children = sorted(inst._children.items())
            if inst.kind == "histogram":
                entry["buckets"] = list(inst.buckets)
                entry["samples"] = [
                    {"labels": dict(key), "counts": list(c["counts"]),
                     "sum": c["sum"], "count": c["count"]}
                    for key, c in children]
            else:
                entry["samples"] = [
                    {"labels": dict(key), "value": v}
                    for key, v in children]
            out[name] = entry
        return out

    def merge_snapshot(self, snap: dict) -> None:
        """Fold another registry's ``snapshot()`` into this one.

        Counters and histograms add; gauges take the incoming value.
        Used to aggregate per-worker snapshots into a fleet view.
        """
        for name, entry in snap.items():
            kind = entry.get("kind")
            if kind == "counter":
                inst = self.counter(name, entry.get("help", ""),
                                    volatile=entry.get("volatile", False))
                for s in entry.get("samples", []):
                    if s["value"]:
                        inst.inc(s["value"], **s.get("labels", {}))
            elif kind == "gauge":
                inst = self.gauge(name, entry.get("help", ""),
                                  volatile=entry.get("volatile", False))
                for s in entry.get("samples", []):
                    inst.set(s["value"], **s.get("labels", {}))
            elif kind == "histogram":
                inst = self.histogram(
                    name, entry.get("help", ""),
                    buckets=entry.get("buckets", DEFAULT_BUCKETS),
                    volatile=entry.get("volatile", False))
                for s in entry.get("samples", []):
                    key = _label_key(s.get("labels", {}))
                    with inst._lock:
                        child = inst._children.setdefault(
                            key, {"counts": [0] * (len(inst.buckets) + 1),
                                  "sum": 0.0, "count": 0})
                        incoming = list(s["counts"])
                        if len(incoming) != len(child["counts"]):
                            raise ValueError(
                                f"bucket mismatch merging {name!r}")
                        child["counts"] = [a + b for a, b in
                                           zip(child["counts"], incoming)]
                        child["sum"] += s["sum"]
                        child["count"] += s["count"]

    # -- exposition --------------------------------------------------------

    def to_prom_text(self) -> str:
        """Prometheus textfile exposition (volatile included)."""
        lines: list[str] = []
        snap = self.snapshot(include_volatile=True)
        for name, entry in snap.items():
            if entry["help"]:
                lines.append(f"# HELP {name} {entry['help']}")
            lines.append(f"# TYPE {name} {entry['kind']}")
            if entry["kind"] == "histogram":
                bounds = entry["buckets"]
                for s in entry["samples"]:
                    labels = _label_key(s["labels"])
                    cumulative = 0
                    for bound, n in zip(bounds, s["counts"]):
                        cumulative += n
                        lines.append(_prom_line(
                            name, labels, cumulative, suffix="_bucket",
                            extra=(("le", _fmt_value(float(bound))),)))
                    cumulative += s["counts"][-1]
                    lines.append(_prom_line(
                        name, labels, cumulative, suffix="_bucket",
                        extra=(("le", "+Inf"),)))
                    lines.append(_prom_line(name, labels, s["sum"],
                                            suffix="_sum"))
                    lines.append(_prom_line(name, labels, s["count"],
                                            suffix="_count"))
            else:
                for s in entry["samples"]:
                    lines.append(_prom_line(name, _label_key(s["labels"]),
                                            s["value"]))
        return "\n".join(lines) + ("\n" if lines else "")

    def canonical_json(self) -> str:
        """Deterministic JSON: non-volatile instruments only, sorted keys,
        fixed separators, trailing newline.  Byte-identical across two
        seeded runs over identical starting state."""
        doc = {"schema": 1,
               "metrics": self.snapshot(include_volatile=False)}
        return json.dumps(doc, sort_keys=True,
                          separators=(",", ":")) + "\n"

    def write_files(self, directory: str | Path) -> tuple[Path, Path]:
        """Write ``metrics.prom`` + ``metrics.json`` into ``directory``.

        Returns ``(prom_path, json_path)``.  The directory is created if
        missing so callers can point at a fresh export location.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        prom_path = directory / METRICS_PROM_NAME
        json_path = directory / METRICS_JSON_NAME
        prom_path.write_text(self.to_prom_text())
        json_path.write_text(self.canonical_json())
        return prom_path, json_path


#: Process-wide default registry.  Instrumented subsystems accept an
#: explicit registry and fall back to this one, so tests can isolate.
_DEFAULT = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _DEFAULT


# -- textfile parsing (CI assertions, tests) -------------------------------

def _parse_labels(body: str) -> dict:
    labels: dict[str, str] = {}
    i = 0
    while i < len(body):
        eq = body.index("=", i)
        key = body[i:eq].strip().strip(",")
        if body[eq + 1] != '"':
            raise ValueError(f"unquoted label value in {body!r}")
        j = eq + 2
        out: list[str] = []
        while body[j] != '"':
            if body[j] == "\\":
                nxt = body[j + 1]
                out.append({"n": "\n", "\\": "\\", '"': '"'}.get(nxt, nxt))
                j += 2
            else:
                out.append(body[j])
                j += 1
        labels[key] = "".join(out)
        i = j + 1
    return labels


def parse_prom(text: str | Iterable[str]) -> dict[str, dict[LabelKey, float]]:
    """Parse Prometheus textfile exposition back into samples.

    Returns ``{sample_name: {label_key: value}}`` where ``label_key`` is
    a sorted tuple of ``(key, value)`` pairs.  Histogram series appear
    under their ``_bucket``/``_sum``/``_count`` sample names.  Raises
    ``ValueError`` on malformed lines — the CI smoke job leans on that.
    """
    if isinstance(text, str):
        text = text.splitlines()
    samples: dict[str, dict[LabelKey, float]] = {}
    for raw in text:
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if "{" in line:
            name, rest = line.split("{", 1)
            body, value_part = rest.rsplit("}", 1)
            labels = _parse_labels(body)
        else:
            parts = line.split()
            if len(parts) != 2:
                raise ValueError(f"malformed sample line: {line!r}")
            name, value_part = parts
            labels = {}
        name = name.strip()
        if not name:
            raise ValueError(f"malformed sample line: {line!r}")
        value_str = value_part.strip()
        if value_str == "+Inf":
            value = math.inf
        elif value_str == "-Inf":
            value = -math.inf
        else:
            value = float(value_str)
        samples.setdefault(name, {})[_label_key(labels)] = value
    return samples
