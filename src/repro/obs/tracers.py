"""Durable and aggregating trace sinks.

These compose with the substrate's emit sites (ports, switches,
balancers, senders) through the :class:`~repro.sim.trace.Tracer`
interface.  All hot paths guard on ``tracer.enabled``, so installing a
:class:`~repro.sim.trace.NullTracer` still costs nothing; these sinks
flip ``enabled`` and pay only for what they keep.
"""

from __future__ import annotations

import gzip
import json
from collections import Counter
from pathlib import Path
from typing import IO, Any, Iterable, Optional

from repro.errors import ConfigError
from repro.sim.trace import Tracer

__all__ = ["JsonlTracer", "CountingTracer", "TeeTracer", "open_trace_text", "trace_node"]


def open_trace_text(path: str | Path) -> IO[str]:
    """Open a trace file for reading, transparently decompressing ``.gz``.

    The read-side counterpart of :class:`JsonlTracer`'s write path: one
    code path serves both plain ``.jsonl`` and ``.jsonl.gz`` artefacts
    (also used for span files by :func:`repro.obs.spans.load_spans`).
    """
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, "rt", encoding="utf-8")
    return path.open()


def trace_node(fields: dict) -> str:
    """The node attribution of one trace point.

    Emit sites tag records with ``port=`` (data-plane trace points) or
    ``node=`` (control-plane ones: reroutes, retransmits).  Records with
    neither aggregate under ``""``.
    """
    node = fields.get("port")
    if node is None:
        node = fields.get("node")
    return node if node is not None else ""


class JsonlTracer(Tracer):
    """Streams trace records to a JSON-Lines file with bounded buffering.

    One JSON object per line: ``{"t": <time>, "kind": <kind>, ...fields}``.
    Records are buffered in memory and written out every ``flush_every``
    records, so long runs never hold the full trace and short runs do not
    thrash the disk.  Call :meth:`close` (or use the tracer as a context
    manager) to flush the tail.

    A path ending in ``.gz`` (e.g. ``run.jsonl.gz``) is written
    gzip-compressed, so long flight-recorded runs don't blow up disk;
    ``repro trace summarize`` reads both forms transparently.

    Parameters
    ----------
    path:
        Output file (truncated on open).
    kinds:
        If given, only these kinds are written; others are dropped at the
        emit site.
    flush_every:
        Buffer size bound, in records.
    """

    enabled = True

    def __init__(
        self,
        path: str | Path,
        *,
        kinds: Optional[Iterable[str]] = None,
        flush_every: int = 1024,
    ):
        if flush_every < 1:
            raise ConfigError(f"flush_every must be >= 1, got {flush_every!r}")
        self.path = Path(path)
        self.kinds = set(kinds) if kinds is not None else None
        self.flush_every = int(flush_every)
        self.records_written = 0
        self._buffer: list[str] = []
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if self.path.suffix == ".gz":
            self._fh: Optional[IO[str]] = gzip.open(self.path, "wt", encoding="utf-8")
        else:
            self._fh = self.path.open("w")

    def emit(self, time: float, kind: str, **fields: Any) -> None:
        if self.kinds is not None and kind not in self.kinds:
            return
        if self._fh is None:
            raise ConfigError(f"JsonlTracer({self.path}) is closed")
        record = {"t": time, "kind": kind}
        record.update(fields)
        self._buffer.append(json.dumps(record, default=str))
        self.records_written += 1
        if len(self._buffer) >= self.flush_every:
            self.flush()

    def flush(self) -> None:
        """Write buffered records to disk."""
        if self._fh is None:
            return
        if self._buffer:
            self._fh.write("\n".join(self._buffer) + "\n")
            self._buffer.clear()
        self._fh.flush()

    def close(self) -> None:
        """Flush and close the file.  Idempotent."""
        if self._fh is None:
            return
        self.flush()
        self._fh.close()
        self._fh = None

    @property
    def closed(self) -> bool:
        return self._fh is None

    def __enter__(self) -> "JsonlTracer":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class CountingTracer(Tracer):
    """Aggregates per-(kind, node) event counts, keeping no records.

    The cheap always-on companion to :class:`JsonlTracer`: each emit is a
    dict lookup and an integer increment, so it can ride along under full
    traffic to produce the counter totals a run manifest records.
    """

    enabled = True

    def __init__(self, kinds: Optional[Iterable[str]] = None):
        self.kinds = set(kinds) if kinds is not None else None
        #: (kind, node) -> count
        self.counts: Counter[tuple[str, str]] = Counter()

    def emit(self, time: float, kind: str, **fields: Any) -> None:
        if self.kinds is not None and kind not in self.kinds:
            return
        self.counts[(kind, trace_node(fields))] += 1

    # -- views -----------------------------------------------------------

    def total(self) -> int:
        """All counted trace points."""
        return sum(self.counts.values())

    def count(self, kind: str) -> int:
        """Total count of one kind across all nodes."""
        return sum(c for (k, _), c in self.counts.items() if k == kind)

    def totals(self) -> dict[str, int]:
        """Per-kind totals, sorted by kind."""
        out: Counter[str] = Counter()
        for (kind, _), c in self.counts.items():
            out[kind] += c
        return dict(sorted(out.items()))

    def by_node(self, kind: str) -> dict[str, int]:
        """One kind's counts per node, largest first."""
        items = [(node, c) for (k, node), c in self.counts.items() if k == kind]
        return dict(sorted(items, key=lambda kv: (-kv[1], kv[0])))

    def clear(self) -> None:
        """Reset all counters."""
        self.counts.clear()


class TeeTracer(Tracer):
    """Fans each trace point out to several sinks.

    ``enabled`` is True iff any child is enabled, so a tee of only
    disabled tracers still costs the hot path nothing.  Closing the tee
    closes every child.
    """

    def __init__(self, *tracers: Tracer):
        self.tracers = tuple(tracers)
        self.enabled = any(t.enabled for t in self.tracers)

    def emit(self, time: float, kind: str, **fields: Any) -> None:
        for t in self.tracers:
            if t.enabled:
                t.emit(time, kind, **fields)

    def flush(self) -> None:
        for t in self.tracers:
            t.flush()

    def close(self) -> None:
        for t in self.tracers:
            t.close()
