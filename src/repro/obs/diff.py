"""Metric-by-metric comparison of two runs or sweeps (``repro diff``).

Takes two exports — ``.json`` / ``.csv`` metric tables (from
:mod:`repro.metrics.export` or the bench writers) or ``.npz`` flight
recordings (via :meth:`~repro.obs.recorder.RecordedRun.summary_row`) —
aligns their rows, and compares every shared numeric column.

The comparison is **direction-aware**: FCTs, drops, retransmits, ECN
marks, deadline misses and queue depths regress when they go *up*;
goodput, throughput and completion counts regress when they go *down*;
identity-ish columns (flow counts, sample counts, seeds) are reported
but never gate.  A change beyond ``tolerance`` (relative) against the
metric's good direction is a regression, and ``repro diff`` exits
non-zero — the CI smoke job is exactly ``repro diff baseline current``.
"""

from __future__ import annotations

import csv
import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.errors import ConfigError

__all__ = ["MetricDelta", "load_rows", "diff_rows", "diff_paths", "format_diff"]

#: substrings marking metrics where bigger is better
_HIGHER_BETTER = ("goodput", "throughput", "utilization", "n_completed")
#: substrings marking informational columns that never gate
#: ("_share"/"retained" cover span-file attribution columns: a shift in
#: where tail latency comes from is a finding, not a regression)
_NEUTRAL = ("n_flows", "samples", "seed", "horizon", "n_packets", "peak_entries",
            "_share", "retained")


def metric_direction(name: str) -> int:
    """+1 if bigger is better, -1 if smaller is better, 0 informational."""
    low = name.lower()
    if any(s in low for s in _NEUTRAL) or low.endswith("_n"):
        return 0
    if any(s in low for s in _HIGHER_BETTER):
        return 1
    return -1


@dataclass
class MetricDelta:
    """One compared cell: a metric in one aligned row pair."""

    row_key: str
    metric: str
    a: Optional[float]
    b: Optional[float]
    rel_change: float  # (b - a) / |a|; NaN when not comparable
    direction: int
    status: str  # "ok" | "improved" | "regression" | "info"


def _coerce(value):
    """Best-effort numeric view of a cell (CSV gives strings)."""
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, (int, float)):
        return value
    text = str(value).strip()
    if not text:
        return None
    try:
        return int(text)
    except ValueError:
        try:
            return float(text)
        except ValueError:
            return text


def load_rows(path: str | Path) -> list[dict]:
    """Load a metrics export as a list of flat row dicts.

    Accepts ``.json`` (array of objects, or one object), ``.csv``
    (header + rows), ``.npz`` flight recordings (one summary row), and
    ``.spans.json[.gz]`` span files (one attribution summary row), so
    ``repro diff old.spans.json new.spans.json`` compares where two
    runs' tail latency comes from.
    """
    path = Path(path)
    if not path.exists():
        raise ConfigError(f"no such export: {path}")
    name = path.name.lower()
    if name.endswith(".spans.json") or name.endswith(".spans.json.gz"):
        from repro.obs.spans import load_spans, summary_row
        return [summary_row(load_spans(path))]
    suffix = path.suffix.lower()
    if suffix == ".npz":
        from repro.obs.recorder import RecordedRun
        return [RecordedRun.load(path).summary_row()]
    if suffix == ".json":
        data = json.loads(path.read_text())
        rows = data if isinstance(data, list) else [data]
        if not all(isinstance(r, dict) for r in rows):
            raise ConfigError(f"{path}: expected an array of flat objects")
        return rows
    if suffix == ".csv":
        with path.open(newline="") as fh:
            return [{k: _coerce(v) for k, v in row.items()}
                    for row in csv.DictReader(fh)]
    raise ConfigError(f"unsupported export format {suffix!r} "
                      "(use .json, .csv, or .npz)")


def _row_key(row: dict, index: int) -> str:
    """Stable alignment key: the row's non-numeric identity columns."""
    parts = [f"{k}={v}" for k, v in sorted(row.items())
             if isinstance(_coerce(v), str)]
    return "; ".join(parts) if parts else f"row[{index}]"


def _pair_rows(rows_a: list[dict], rows_b: list[dict]
               ) -> list[tuple[str, dict, dict]]:
    keyed_a: dict[str, list[tuple[int, dict]]] = {}
    for i, row in enumerate(rows_a):
        keyed_a.setdefault(_row_key(row, i), []).append((i, row))
    pairs: list[tuple[str, dict, dict]] = []
    seen: dict[str, int] = {}
    for i, row_b in enumerate(rows_b):
        key = _row_key(row_b, i)
        bucket = keyed_a.get(key, [])
        n = seen.get(key, 0)
        if n < len(bucket):
            seen[key] = n + 1
            label = key if len(bucket) == 1 else f"{key} #{n}"
            pairs.append((label, bucket[n][1], row_b))
    return pairs


def diff_rows(rows_a: list[dict], rows_b: list[dict], *,
              tolerance: float = 0.05) -> list[MetricDelta]:
    """Compare aligned rows metric-by-metric.

    ``tolerance`` is the relative change (0.05 = 5 %) a gated metric may
    move in its *bad* direction before counting as a regression.
    """
    if tolerance < 0:
        raise ConfigError("tolerance must be >= 0")
    pairs = _pair_rows(rows_a, rows_b)
    if not pairs:
        raise ConfigError("no rows could be aligned between the two exports "
                          "(schemes/coordinates do not match)")
    deltas: list[MetricDelta] = []
    for key, row_a, row_b in pairs:
        for metric in sorted(set(row_a) & set(row_b)):
            va, vb = _coerce(row_a[metric]), _coerce(row_b[metric])
            if isinstance(va, str) or isinstance(vb, str):
                continue
            direction = metric_direction(metric)
            if va is None or vb is None or (
                    isinstance(va, float) and math.isnan(va)) or (
                    isinstance(vb, float) and math.isnan(vb)):
                deltas.append(MetricDelta(key, metric, va, vb,
                                          math.nan, direction, "info"))
                continue
            va, vb = float(va), float(vb)
            if va == vb:
                rel = 0.0
            elif va != 0.0:
                rel = (vb - va) / abs(va)
            else:
                rel = math.inf if vb > 0 else -math.inf
            if direction == 0:
                status = "info"
            elif rel == 0.0:
                status = "ok"
            else:
                bad = rel > 0 if direction < 0 else rel < 0
                if not bad:
                    status = "improved"
                else:
                    status = "regression" if abs(rel) > tolerance else "ok"
            deltas.append(MetricDelta(key, metric, va, vb, rel,
                                      direction, status))
    return deltas


def diff_paths(path_a: str | Path, path_b: str | Path, *,
               tolerance: float = 0.05) -> tuple[list[MetricDelta], int]:
    """Compare two exports; returns (deltas, number of regressions)."""
    deltas = diff_rows(load_rows(path_a), load_rows(path_b),
                       tolerance=tolerance)
    return deltas, sum(1 for d in deltas if d.status == "regression")


def format_diff(deltas: list[MetricDelta], *, show_all: bool = False) -> str:
    """Human-readable diff table: regressions first, then improvements.

    ``show_all`` includes unchanged/ok metrics too.
    """
    order = {"regression": 0, "improved": 1, "ok": 2, "info": 3}
    rows = [d for d in deltas
            if show_all or d.status in ("regression", "improved")]
    rows.sort(key=lambda d: (order[d.status], d.row_key, d.metric))
    n_reg = sum(1 for d in deltas if d.status == "regression")
    n_imp = sum(1 for d in deltas if d.status == "improved")
    lines = [f"{len(deltas)} metrics compared: "
             f"{n_reg} regression(s), {n_imp} improvement(s)"]
    if not rows:
        lines.append("no changes beyond tolerance")
        return "\n".join(lines)
    header = f"{'status':<11} {'metric':<28} {'A':>12} {'B':>12} {'change':>9}  row"
    lines += [header, "-" * len(header)]
    for d in rows:
        a = "—" if d.a is None or (isinstance(d.a, float) and math.isnan(d.a)) \
            else f"{d.a:.5g}"
        b = "—" if d.b is None or (isinstance(d.b, float) and math.isnan(d.b)) \
            else f"{d.b:.5g}"
        change = "—" if math.isnan(d.rel_change) else f"{d.rel_change:+.1%}"
        lines.append(f"{d.status:<11} {d.metric:<28} {a:>12} {b:>12} "
                     f"{change:>9}  {d.row_key}")
    return "\n".join(lines)
