"""Observability: file-backed tracing, run telemetry, manifests, progress.

``repro.obs`` is the instrumentation layer the paper's observational
argument needs in code form.  The substrate already emits trace points
(:mod:`repro.sim.trace`); this package turns them into durable artefacts
and makes whole runs self-describing:

* :class:`JsonlTracer` — streams trace records to a JSON-Lines file with
  bounded buffering (post-mortem analysis, ``repro trace summarize``);
* :class:`CountingTracer` — near-zero-cost per-(kind, node) counters
  (enqueue / dequeue / drop / mark / reroute / retransmit);
* :class:`TeeTracer` — fans one trace stream out to several sinks;
* :class:`RunTelemetry` — wall-clock profiling of a simulation run
  (events/sec, sim-time/wall-time ratio, peak memory);
* :func:`build_manifest` / :func:`write_manifest` — ``manifest.json``
  beside every export, recording exactly what produced it;
* :class:`ProgressReporter` — heartbeat + ETA for multi-run sweeps
  (plus :func:`format_fleet_heartbeat` for multi-worker fleet sweeps);
* :func:`summarize_trace` — aggregate a JSONL trace back into tables;
* :class:`FlightRecorder` / :class:`RecordedRun` — bounded in-sim
  time-series sampling with a q_th decision audit (``repro run
  --record``, ``repro report``);
* :func:`render_html_report` — self-contained HTML dashboards;
* :func:`diff_paths` / :func:`format_diff` — direction-aware metric
  regression detection (``repro diff``);
* :class:`SpanBuffer` / :func:`format_explain` — per-flow span
  forensics with deterministic tail sampling (``repro run --spans``,
  ``repro explain``);
* :class:`EngineProfiler` — kernel self-profiling: per-handler event
  counts and sampled wall time (``repro bench --profile``);
* :class:`MetricsRegistry` — dependency-free Counter/Gauge/Histogram
  registry with Prometheus textfile exposition and deterministic
  canonical-JSON dumps (``metrics.prom`` / ``metrics.json`` beside
  every export).
"""

from repro.obs.diff import MetricDelta, diff_paths, diff_rows, format_diff, load_rows
from repro.obs.manifest import MANIFEST_NAME, build_manifest, git_sha, write_manifest
from repro.obs.metrics import (
    METRICS_JSON_NAME,
    METRICS_PROM_NAME,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    parse_prom,
)
from repro.obs.profiler import EngineProfiler
from repro.obs.progress import (
    ProgressReporter,
    format_fleet_heartbeat,
    format_fleet_workers,
)
from repro.obs.recorder import FlightRecorder, RecordedRun
from repro.obs.report import render_html_report, write_html_report
from repro.obs.spans import SpanBuffer, format_explain, load_spans
from repro.obs.summarize import TraceSummary, format_trace_summary, summarize_trace
from repro.obs.telemetry import RunTelemetry
from repro.obs.tracers import CountingTracer, JsonlTracer, TeeTracer

__all__ = [
    "CountingTracer",
    "JsonlTracer",
    "TeeTracer",
    "SpanBuffer",
    "load_spans",
    "format_explain",
    "EngineProfiler",
    "RunTelemetry",
    "MANIFEST_NAME",
    "METRICS_JSON_NAME",
    "METRICS_PROM_NAME",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "parse_prom",
    "build_manifest",
    "git_sha",
    "write_manifest",
    "ProgressReporter",
    "format_fleet_heartbeat",
    "format_fleet_workers",
    "TraceSummary",
    "format_trace_summary",
    "summarize_trace",
    "FlightRecorder",
    "RecordedRun",
    "render_html_report",
    "write_html_report",
    "MetricDelta",
    "load_rows",
    "diff_rows",
    "diff_paths",
    "format_diff",
]
