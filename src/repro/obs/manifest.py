"""Run manifests: make every exported artefact self-describing.

A manifest records, next to each CSV/JSON export, exactly what produced
it: the full scenario configuration, seed, package version, git revision
(when the source tree is a checkout), run telemetry, and trace-counter
totals.  Six months later, ``manifest.json`` answers "which code and
which config made this file" without archaeology.
"""

from __future__ import annotations

import dataclasses
import json
import platform
import subprocess
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Mapping, Optional

from repro._version import __version__

__all__ = ["MANIFEST_NAME", "build_manifest", "git_sha", "write_manifest"]

MANIFEST_NAME = "manifest.json"

#: manifest schema version; bump when fields change incompatibly
MANIFEST_SCHEMA = 1


def git_sha() -> Optional[str]:
    """The source tree's HEAD commit, or None outside a git checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


def _jsonable(value: Any) -> Any:
    """Best-effort JSON projection of config field values."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {k: _jsonable(v) for k, v in dataclasses.asdict(value).items()}
    return repr(value)


def build_manifest(
    config: Any = None,
    metrics: Any = None,
    *,
    counters: Any = None,
    extra: Optional[Mapping[str, Any]] = None,
) -> dict[str, Any]:
    """Assemble a manifest record.

    Parameters
    ----------
    config:
        The :class:`~repro.experiments.common.ScenarioConfig` (or any
        dataclass / mapping) that produced the run.
    metrics:
        The run's :class:`~repro.metrics.collector.RunMetrics`; its
        scalar ``extras`` (telemetry, completion, event count) and
        horizon are recorded.
    counters:
        A :class:`~repro.obs.tracers.CountingTracer` (or a plain
        kind→count mapping); its per-kind totals are recorded.
    extra:
        Additional top-level fields (e.g. sweep coordinates).
    """
    manifest: dict[str, Any] = {
        "schema": MANIFEST_SCHEMA,
        "created_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "package": "repro",
        "version": __version__,
        "git_sha": git_sha(),
        "python": platform.python_version(),
        "platform": platform.platform(),
    }
    if config is not None:
        if dataclasses.is_dataclass(config) and not isinstance(config, type):
            cfg = dataclasses.asdict(config)
        else:
            cfg = dict(config)
        manifest["config"] = {k: _jsonable(v) for k, v in cfg.items()}
        manifest["seed"] = cfg.get("seed")
        manifest["scheme"] = cfg.get("scheme")
        # Observability settings get their own section so artefacts are
        # self-describing: a span file or trace next to this manifest
        # can be matched to the switches that produced it.  These knobs
        # are exactly the ones the result cache ignores
        # (repro.cache.key.NON_SEMANTIC_FIELDS).
        manifest["observability"] = {
            "trace_kinds": [str(k) for k in (cfg.get("trace_kinds") or ())],
            "telemetry": bool(cfg.get("telemetry", False)),
            "timeseries": bool(cfg.get("timeseries", False)),
            "spans": bool(cfg.get("spans", False)),
            "profile": bool(cfg.get("profile", False)),
        }
    if metrics is not None:
        manifest["horizon_s"] = metrics.horizon
        manifest["run"] = {
            k: v for k, v in metrics.extras.items()
            if isinstance(v, (str, int, float, bool)) or v is None
        }
    if counters is not None:
        totals = counters.totals() if hasattr(counters, "totals") else dict(counters)
        manifest["trace_counters"] = {str(k): int(v) for k, v in totals.items()}
    if extra:
        manifest.update(extra)
    return manifest


def write_manifest(export_path: str | Path, manifest: Mapping[str, Any]) -> Path:
    """Write ``manifest.json`` beside an export file (or into a directory).

    Records the export's file name under ``"export"`` so a directory
    holding several artefacts still tells them apart.
    """
    export_path = Path(export_path)
    directory = export_path if export_path.is_dir() else export_path.parent
    payload = dict(manifest)
    if not export_path.is_dir():
        payload["export"] = export_path.name
    path = directory / MANIFEST_NAME
    path.write_text(json.dumps(payload, indent=2, default=str) + "\n")
    return path
