"""Self-contained HTML dashboards from flight recordings.

``repro report RUN.npz --html out.html`` turns a
:class:`~repro.obs.recorder.RecordedRun` into a single HTML file with
no external resources — every chart is inline SVG built by the
:mod:`repro.viz` helpers, so the artefact can be attached to a CI run
or mailed around and still render.

Panels, in reading order:

* run identity (scheme, seed, horizon, sampling cadence);
* **q_th evolution vs. the Eq. 9 prediction** for the busiest switch —
  the applied (clamped) threshold against the calculator's raw output,
  plus a regime breakdown over every audited decision;
* queue-occupancy heatmap over the recorded ports;
* fabric throughput and per-port utilisation;
* ECN-mark / drop / retransmit rates;
* active short/long flow counts;
* FCT and queueing-delay distributions with a percentile table;
* **tail forensics** (when a span file is supplied): aggregate FCT
  attribution shares and a per-flow breakdown of the slowest flows.
"""

from __future__ import annotations

import math
from collections import Counter
from pathlib import Path

import numpy as np

from repro.obs.recorder import RecordedRun
from repro.viz import svg_bar_chart, svg_heatmap, svg_line_chart

__all__ = ["render_html_report", "write_html_report"]

_CSS = """
:root { --viz-ink:#0b0b0b; --viz-muted:#898781; --viz-grid:#e1e0d9;
        --viz-axis:#c3c2b7; }
body { font-family: system-ui, sans-serif; color: #0b0b0b;
       background: #f9f9f7; margin: 0; padding: 24px; }
main { max-width: 820px; margin: 0 auto; }
section { background: #fcfcfb; border: 1px solid rgba(11,11,11,0.10);
          border-radius: 8px; padding: 16px; margin-bottom: 16px; }
h1 { font-size: 20px; } h2 { font-size: 15px; margin: 0 0 8px; }
table { border-collapse: collapse; font-size: 12px; }
td, th { padding: 3px 10px; border-bottom: 1px solid #e1e0d9;
         text-align: right; font-variant-numeric: tabular-nums; }
th { color: #52514e; font-weight: 600; }
td:first-child, th:first-child { text-align: left; }
p.note { color: #52514e; font-size: 12px; margin: 6px 0 0; }
"""


def _fmt_cell(v) -> str:
    if v is None:
        return "—"
    if isinstance(v, float):
        if math.isnan(v):
            return "—"
        return f"{v:.4g}"
    return str(v)


def _table(headers: list[str], rows: list[list]) -> str:
    head = "".join(f"<th>{h}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{_fmt_cell(c)}</td>" for c in row) + "</tr>"
        for row in rows)
    return f"<table><tr>{head}</tr>{body}</table>"


def _qth_panel(run: RecordedRun) -> str:
    """The q_th-vs-Eq.-9 audit panel (empty-state aware)."""
    switches = run.audit_switches()
    if not switches:
        return ('<section id="panel-qth"><h2>q_th vs. Eq. 9</h2>'
                "<p class='note'>No granularity decisions were audited "
                "(non-TLB scheme, or fixed q_th).</p></section>")
    # Busiest switch = most audited decisions; its applied threshold
    # against the calculator's raw Eq. 9 output shows the clamping.
    counts = {s: int(np.sum(run.data["audit_switch_idx"] == i))
              for i, s in enumerate(switches)}
    star = max(switches, key=lambda s: counts[s])
    audit = run.audit(star)
    chart = svg_line_chart(
        [("q_th (applied)", audit["t"], audit["qth"].astype(float)),
         ("Eq. 9 raw", audit["t"], audit["raw"])],
        title=f"q_th evolution vs. Eq. 9 prediction — {star}",
        y_label="packets")
    regimes = Counter(str(r) for r in run.audit()["regime"])
    regime_bars = svg_bar_chart(
        sorted(regimes.items()), height=160,
        title="Decision regimes (all switches)", y_label="decisions")
    n_total = int(run.data["audit_t"].size)
    note = (f"<p class='note'>{n_total} decisions audited across "
            f"{len(switches)} switch(es); showing {star} "
            f"({counts[star]} decisions). Inputs (m_S, m_L, load, RTT) "
            f"for every decision are in the recording's audit arrays.</p>")
    return (f'<section id="panel-qth"><h2>q_th vs. Eq. 9</h2>'
            f"{chart}{regime_bars}{note}</section>")


def _hist_panel(run: RecordedRun) -> str:
    names = [("fct_short", "Short-flow FCT (s)"),
             ("fct_long", "Long-flow FCT (s)"),
             ("queue_wait", "Queueing delay (s)")]
    parts = ['<section id="panel-dist"><h2>Latency distributions</h2>']
    rows = []
    for key, label in names:
        h = run.histogram(key)
        rows.append([label, h.count, h.mean(), h.percentile(50),
                     h.percentile(95), h.percentile(99)])
        if h.n_buckets:
            bars = [(f"{lo:.3g}", float(c)) for lo, _, c in h.bucket_table()]
            parts.append(svg_bar_chart(bars, height=160, title=label,
                                       y_label="count", x_label="bucket low edge (s)"))
    parts.append(_table(["distribution", "n", "mean", "p50", "p95", "p99"], rows))
    parts.append("</section>")
    return "".join(parts)


def _spans_panel(spans: dict) -> str:
    """The tail-forensics panel rendered from a loaded span document."""
    from repro.obs.spans import COMPONENTS, tail_flows

    totals = spans.get("totals") or {}
    shares = totals.get("shares") or {}
    dominant = totals.get("dominant") or {}
    retained = totals.get("retained") or {}

    bars = [(c, 100.0 * float(shares.get(c, 0.0))) for c in COMPONENTS]
    share_chart = svg_bar_chart(
        bars, height=160, title="FCT attribution (completed flows)",
        y_label="% of total FCT")

    rows = []
    for fid, doc in tail_flows(spans, 5):
        attr = doc.get("attribution") or {}
        comps = attr.get("components") or {}
        fct = doc.get("fct")
        rows.append([
            fid,
            doc.get("class", "?"),
            doc.get("size"),
            None if fct is None else fct * 1e3,
            attr.get("dominant", "?"),
            comps.get("queueing", 0.0) * 1e3,
            (comps.get("retransmit", 0.0) + comps.get("reorder", 0.0)
             + comps.get("reroute", 0.0)) * 1e3,
            doc.get("drops", 0),
            doc.get("retransmits", 0),
            doc.get("reroutes", 0),
            "yes" if doc.get("fault_affected") else "",
        ])
    table = _table(
        ["flow", "class", "bytes", "FCT (ms)", "dominant",
         "queueing (ms)", "recovery (ms)", "drops", "rexmit", "reroutes",
         "fault"],
        rows)

    dom = ", ".join(f"{k}: {v}" for k, v in sorted(dominant.items())) or "—"
    ret = ", ".join(f"{k}: {v}" for k, v in sorted(retained.items())) or "—"
    note = (f"<p class='note'>{totals.get('flows', 0)} flows tracked, "
            f"{totals.get('completed', 0)} completed; dominant components: "
            f"{dom}; fully retained spans: {ret}. Per-hop timelines are in "
            "the span file (<code>repro explain</code>).</p>")
    return (f'<section id="panel-spans"><h2>Tail forensics</h2>'
            f"{share_chart}{table}{note}</section>")


def render_html_report(run: RecordedRun, *, source: str = "",
                       spans: dict | None = None) -> str:
    """Render one recording as a self-contained HTML document.

    ``spans`` is an optional loaded span document (see
    :func:`repro.obs.spans.load_spans`); when given, a "Tail forensics"
    section is appended (``repro report RUN.npz --spans RUN.spans.json``).
    """
    meta = run.meta
    t = run.times
    t_lo = float(t[0]) if t.size else 0.0
    t_hi = float(t[-1]) if t.size else 1.0
    mid = run.mid_times()

    head_rows = [[k, _fmt_cell(meta.get(k))] for k in
                 ("scheme", "seed", "horizon_s", "cadence_s",
                  "cadence_final_s", "n_samples", "version")]
    if source:
        head_rows.append(["source", source])

    queue_heat = svg_heatmap(
        run.qdepth.T, run.port_names, x_lo=t_lo, x_hi=t_hi,
        title="Queue occupancy (packets)", value_label=" pkts")

    perf_parts = []
    if mid.size:
        perf_parts.append(svg_line_chart(
            [("throughput", mid, run.throughput_bps() / 1e9)],
            title="Fabric throughput", y_label="Gbit/s"))
        util = run.utilization()
        perf_parts.append(svg_heatmap(
            util.T, run.port_names, x_lo=t_lo, x_hi=t_hi,
            title="Link utilisation", value_label=""))
        perf_parts.append(svg_line_chart(
            [("ECN marks", mid, run.rate_per_second("ecn_marked")),
             ("drops", mid, run.rate_per_second("drops")),
             ("retransmits", mid, run.rate_per_second("retransmits"))],
            title="Congestion signals", y_label="events/s"))
    flows_chart = svg_line_chart(
        [("short", t, run.data["active_short"].astype(float)),
         ("long", t, run.data["active_long"].astype(float))],
        title="Active flows", y_label="flows") if t.size else ""

    spans_panel = _spans_panel(spans) if spans else ""
    title = f"repro run report — {meta.get('scheme', '?')}"
    return f"""<!doctype html>
<html lang="en"><head><meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{title}</title><style>{_CSS}</style></head>
<body><main>
<h1>{title}</h1>
<section><h2>Run</h2>{_table(["field", "value"], head_rows)}</section>
{_qth_panel(run)}
<section id="panel-queues"><h2>Queues</h2>{queue_heat}</section>
<section id="panel-perf"><h2>Throughput &amp; congestion</h2>
{"".join(perf_parts)}{flows_chart}</section>
{_hist_panel(run)}
{spans_panel}
</main></body></html>
"""


def write_html_report(run: RecordedRun, path: str | Path, *,
                      source: str = "", spans: dict | None = None) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_html_report(run, source=source, spans=spans),
                    encoding="utf-8")
    return path
