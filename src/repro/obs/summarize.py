"""Aggregate a JSONL trace back into per-kind / per-node tables.

The inverse of :class:`~repro.obs.tracers.JsonlTracer`: read a trace
file and reduce it to the same counters a live
:class:`~repro.obs.tracers.CountingTracer` would have kept, plus the
time span.  Powers ``repro trace summarize``.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.errors import ConfigError
from repro.obs.tracers import open_trace_text, trace_node

__all__ = ["TraceSummary", "format_trace_summary", "summarize_trace"]


@dataclass
class TraceSummary:
    """Aggregates of one trace file."""

    path: str
    n_records: int = 0
    t_min: Optional[float] = None
    t_max: Optional[float] = None
    #: kind -> count
    by_kind: dict[str, int] = field(default_factory=dict)
    #: (kind, node) -> count
    by_kind_node: dict[tuple[str, str], int] = field(default_factory=dict)
    #: records scanned but excluded by --flow / --kind filters
    n_filtered_out: int = 0
    #: human-readable description of active filters ("" when unfiltered)
    filters: str = ""

    def nodes_for(self, kind: str) -> dict[str, int]:
        """One kind's per-node counts, largest first."""
        items = [(n, c) for (k, n), c in self.by_kind_node.items() if k == kind]
        return dict(sorted(items, key=lambda kv: (-kv[1], kv[0])))


def summarize_trace(
    path: str | Path,
    *,
    flow: Optional[int] = None,
    kind: Optional[str] = None,
) -> TraceSummary:
    """Stream one JSONL trace file into a :class:`TraceSummary`.

    Accepts both plain ``.jsonl`` files and gzip-compressed
    ``.jsonl.gz`` files (as written by
    :class:`~repro.obs.tracers.JsonlTracer`) through one code path
    (:func:`~repro.obs.tracers.open_trace_text`).

    Parameters
    ----------
    flow:
        Keep only records tagged with this flow id (``repro trace
        summarize --flow``).  Records without a ``flow`` field (port
        aggregates, fault events) are excluded.
    kind:
        Keep only records of this trace kind (``--kind``).

    Raises
    ------
    ConfigError
        If the file does not exist or a line is not a JSON object.
    """
    path = Path(path)
    if not path.exists():
        raise ConfigError(f"trace file {path} does not exist")
    by_kind: Counter[str] = Counter()
    by_kind_node: Counter[tuple[str, str]] = Counter()
    n = 0
    filtered_out = 0
    t_min: Optional[float] = None
    t_max: Optional[float] = None
    with open_trace_text(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ConfigError(f"{path}:{lineno}: not valid JSON: {exc}") from None
            if not isinstance(record, dict):
                raise ConfigError(f"{path}:{lineno}: expected a JSON object")
            record_kind = str(record.get("kind", "?"))
            if (kind is not None and record_kind != kind) or (
                    flow is not None and record.get("flow") != flow):
                filtered_out += 1
                continue
            n += 1
            by_kind[record_kind] += 1
            by_kind_node[(record_kind, trace_node(record))] += 1
            t = record.get("t")
            if isinstance(t, (int, float)):
                t_min = t if t_min is None else min(t_min, t)
                t_max = t if t_max is None else max(t_max, t)
    active = []
    if flow is not None:
        active.append(f"flow={flow}")
    if kind is not None:
        active.append(f"kind={kind}")
    return TraceSummary(
        path=str(path),
        n_records=n,
        t_min=t_min,
        t_max=t_max,
        by_kind=dict(sorted(by_kind.items())),
        by_kind_node=dict(by_kind_node),
        n_filtered_out=filtered_out,
        filters=" ".join(active),
    )


def _table(headers: list[str], rows: list[list]) -> str:
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    def render(row: list[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip()
    lines = [render(list(headers)), render(["-" * w for w in widths])]
    lines.extend(render(r) for r in cells)
    return "\n".join(lines)


def format_trace_summary(
    summary: TraceSummary,
    *,
    per_node: bool = False,
    top: Optional[int] = None,
) -> str:
    """Render a summary as the tables ``repro trace summarize`` prints.

    Parameters
    ----------
    per_node:
        Also render the per-(kind, node) breakdown.
    top:
        Limit the per-node breakdown to each kind's busiest ``top`` nodes.
    """
    span = ""
    if summary.t_min is not None and summary.t_max is not None:
        span = f"  t=[{summary.t_min:.6f}, {summary.t_max:.6f}]s"
    selected = ""
    if summary.filters:
        selected = (f" ({summary.filters}; "
                    f"{summary.n_filtered_out} records filtered out)")
    out = [f"{summary.path}: {summary.n_records} records, "
           f"{len(summary.by_kind)} kinds{span}{selected}", ""]
    out.append(_table(
        ["kind", "count"],
        [[k, c] for k, c in summary.by_kind.items()],
    ))
    if per_node:
        rows = []
        for kind in summary.by_kind:
            nodes = list(summary.nodes_for(kind).items())
            shown = nodes if top is None else nodes[:top]
            rows.extend([kind, node or "-", c] for node, c in shown)
            if top is not None and len(nodes) > top:
                rows.append([kind, f"... {len(nodes) - top} more", ""])
        out.append("")
        out.append(_table(["kind", "node", "count"], rows))
    return "\n".join(out)
