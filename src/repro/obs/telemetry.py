"""Wall-clock profiling of simulation runs.

:class:`RunTelemetry` brackets a :meth:`Simulator.run` (or the sliced
run loop the scenario harness uses) and derives the numbers every
performance PR needs to prove its wins: wall time, events per wall
second, the sim-time/wall-time ratio, and peak memory.  The measurements
come only from clock reads outside the event loop, so profiling a run
does not perturb it.
"""

from __future__ import annotations

import sys
import time
import tracemalloc
from typing import Any, Optional

try:  # pragma: no cover - always present on the supported platforms
    import resource
except ImportError:  # pragma: no cover - windows
    resource = None  # type: ignore[assignment]

from repro.errors import SimulationError
from repro.sim.engine import Simulator

__all__ = ["RunTelemetry", "peak_rss_bytes"]


def peak_rss_bytes() -> Optional[int]:
    """Peak resident set size of this process, in bytes (None if unknown).

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS.
    """
    if resource is None:
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return int(peak) if sys.platform == "darwin" else int(peak) * 1024


class RunTelemetry:
    """Profiles one simulation run's wall-clock behaviour.

    Use as a context manager or via :meth:`start` / :meth:`stop`; the
    intervals accumulate, so the scenario harness can keep one instance
    across its run slices.

    Parameters
    ----------
    sim:
        The simulator whose clock and event counter are profiled.
    track_heap:
        Also measure the peak *Python heap* via :mod:`tracemalloc`.
        Accurate but slows the run severalfold; the default reports only
        the free process-level peak RSS.
    """

    def __init__(self, sim: Simulator, *, track_heap: bool = False):
        self.sim = sim
        self.track_heap = track_heap
        self.wall_time = 0.0
        self.events = 0
        self.sim_time = 0.0
        self.peak_heap_bytes: Optional[int] = None
        self._t0: Optional[float] = None
        self._e0 = 0
        self._s0 = 0.0
        self._started_tracemalloc = False

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "RunTelemetry":
        """Open a measurement interval."""
        if self._t0 is not None:
            raise SimulationError("RunTelemetry.start() while already running")
        if self.track_heap and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracemalloc = True
        self._e0 = self.sim.events_processed
        self._s0 = self.sim.now
        self._t0 = time.perf_counter()
        return self

    def stop(self) -> "RunTelemetry":
        """Close the interval and accumulate its measurements."""
        if self._t0 is None:
            raise SimulationError("RunTelemetry.stop() without start()")
        self.wall_time += time.perf_counter() - self._t0
        self.events += self.sim.events_processed - self._e0
        self.sim_time += self.sim.now - self._s0
        self._t0 = None
        if self.track_heap and tracemalloc.is_tracing():
            _, peak = tracemalloc.get_traced_memory()
            self.peak_heap_bytes = max(self.peak_heap_bytes or 0, int(peak))
            if self._started_tracemalloc:
                tracemalloc.stop()
                self._started_tracemalloc = False
        return self

    def __enter__(self) -> "RunTelemetry":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # -- derived figures -------------------------------------------------

    @property
    def events_per_sec(self) -> float:
        """Events executed per wall-clock second."""
        return self.events / self.wall_time if self.wall_time > 0 else 0.0

    @property
    def sim_wall_ratio(self) -> float:
        """Simulated seconds per wall-clock second (>1 is faster than life)."""
        return self.sim_time / self.wall_time if self.wall_time > 0 else 0.0

    def as_extras(self) -> dict[str, Any]:
        """The flat record merged into ``RunMetrics.extras``."""
        out: dict[str, Any] = {
            "wall_time_s": self.wall_time,
            "events_per_sec": self.events_per_sec,
            "sim_wall_ratio": self.sim_wall_ratio,
            "peak_rss_bytes": peak_rss_bytes(),
        }
        if self.peak_heap_bytes is not None:
            out["peak_heap_bytes"] = self.peak_heap_bytes
        return out

    def summary_line(self) -> str:
        """One human-readable line, as printed by ``RunMetrics.summary``."""
        rss = peak_rss_bytes()
        parts = [
            f"wall={self.wall_time:.3f} s",
            f"events={self.events}",
            f"rate={self.events_per_sec:,.0f} ev/s",
            f"sim/wall={self.sim_wall_ratio:.2f}x",
        ]
        if rss is not None:
            parts.append(f"peak_rss={rss / 1e6:.0f} MB")
        if self.peak_heap_bytes is not None:
            parts.append(f"peak_heap={self.peak_heap_bytes / 1e6:.1f} MB")
        return "  ".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "running" if self._t0 is not None else "stopped"
        return f"<RunTelemetry {state} {self.summary_line()}>"
