"""The flight recorder: in-sim time-series sampling of a live fabric.

Post-mortem tracing (PR 1's :class:`~repro.obs.tracers.JsonlTracer`)
answers "what happened, packet by packet" but costs a record per event
and still needs re-aggregation to show *why* a run behaved as it did.
The :class:`FlightRecorder` answers the why-questions directly: it
samples the fabric off a simulator timer into bounded columnar time
series — per-port queue depth and utilisation, ECN-mark / drop /
retransmit rates, active short/long flow counts — and audits every
granularity-calculator decision (the paper's Eq. 9 adaptive ``q_th``)
with its inputs and regime.  Constant-memory log-bucketed histograms
(:class:`~repro.metrics.histogram.LogHistogram`) capture FCT and
queueing-delay percentiles without keeping samples.

Memory is bounded by a **cap-and-decimate ring**: when the sample store
reaches ``max_samples`` rows, every other row is dropped and the sample
timer's interval doubles (:meth:`~repro.sim.timers.PeriodicTimer.
set_interval`), so an arbitrarily long run holds at most ``max_samples``
rows at a uniform (coarsening) cadence.  Counters are sampled
*cumulatively*, so rates computed from decimated rows stay exact over
each surviving window.

Recording is off by default: :func:`~repro.experiments.common.
run_scenario` only touches the recorder when one is passed in, the TLB
audit hook fires only when a listener is registered, and the
queueing-delay tap follows the same ``tracer.enabled`` guard discipline
as every other sink — a run without a recorder pays nothing.

The recorded artefact round-trips through a compressed ``.npz``
(:meth:`FlightRecorder.save` / :meth:`RecordedRun.load`) consumed by
``repro report`` (HTML dashboards) and ``repro diff`` (regression
gates).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Optional

import numpy as np

from repro._version import __version__
from repro.errors import ConfigError
from repro.metrics.histogram import LogHistogram
from repro.sim.timers import PeriodicTimer
from repro.sim.trace import Tracer

__all__ = ["FlightRecorder", "RecordedRun"]

#: ``.npz`` layout version; bump on incompatible change
RECORDING_SCHEMA = 1


class _WaitTap(Tracer):
    """A trace sink that folds ``dequeue`` wait times into a histogram.

    Installed (tee'd with the run's tracer) only while a recorder is
    active, so the per-packet cost exists only when recording.
    """

    enabled = True

    def __init__(self, hist: LogHistogram):
        self.hist = hist

    def emit(self, time: float, kind: str, **fields: Any) -> None:
        if kind == "dequeue":
            wait = fields.get("wait")
            if wait is not None:
                self.hist.observe(float(wait))


class _AuditRing:
    """Capped store of q_th decisions for one switch.

    Applies the same cap-and-decimate policy as the sampled series:
    at ``cap`` rows, every other row is dropped and only every
    ``stride``-th subsequent decision is recorded.
    """

    __slots__ = ("cap", "stride", "_skip", "times", "qth", "raw", "regime",
                 "m_short", "m_long", "x_packets", "deadline", "load_bps")

    def __init__(self, cap: int):
        self.cap = cap
        self.stride = 1
        self._skip = 0
        self.times: list[float] = []
        self.qth: list[int] = []
        self.raw: list[float] = []
        self.regime: list[str] = []
        self.m_short: list[int] = []
        self.m_long: list[int] = []
        self.x_packets: list[float] = []
        self.deadline: list[float] = []
        self.load_bps: list[float] = []

    def add(self, now: float, decision, load_bps: float) -> None:
        self._skip += 1
        if self._skip < self.stride:
            return
        self._skip = 0
        self.times.append(now)
        self.qth.append(decision.qth)
        self.raw.append(decision.raw)
        self.regime.append(decision.regime)
        self.m_short.append(decision.m_short)
        self.m_long.append(decision.m_long)
        self.x_packets.append(decision.x_packets)
        self.deadline.append(decision.deadline)
        self.load_bps.append(load_bps)
        if len(self.times) >= self.cap:
            keep = (len(self.times) - 1) % 2  # retain the newest row
            for name in ("times", "qth", "raw", "regime", "m_short", "m_long",
                         "x_packets", "deadline", "load_bps"):
                setattr(self, name, getattr(self, name)[keep::2])
            self.stride *= 2


class FlightRecorder:
    """Samples a live fabric into bounded columnar time series.

    Parameters
    ----------
    cadence:
        Initial sampling period in simulated seconds (default 500 µs —
        TLB's own update interval, so the recorder sees every
        granularity epoch until decimation coarsens it).
    max_samples:
        Row cap per series; reaching it halves the stored rows and
        doubles the sampling interval.
    bins_per_decade:
        Resolution of the FCT / queueing-delay histograms.
    """

    def __init__(self, *, cadence: float = 500e-6, max_samples: int = 4096,
                 bins_per_decade: int = 10):
        if cadence <= 0:
            raise ConfigError("cadence must be positive")
        if max_samples < 4:
            raise ConfigError("max_samples must be >= 4")
        self.cadence = float(cadence)
        self.cadence_now = float(cadence)
        self.max_samples = int(max_samples)
        # sampled series (shared clock)
        self._times: list[float] = []
        self._qdepth: list[list[int]] = []
        self._busy: list[list[float]] = []
        self._bytes: list[list[int]] = []
        self._ecn: list[list[int]] = []
        self._drops: list[list[int]] = []
        self._active_short: list[int] = []
        self._active_long: list[int] = []
        self._retransmits: list[int] = []
        # decision audit, per switch
        self._audit: dict[str, _AuditRing] = {}
        # constant-memory distributions
        self.fct_short = LogHistogram(bins_per_decade, min_value=1e-6)
        self.fct_long = LogHistogram(bins_per_decade, min_value=1e-6)
        self.queue_wait = LogHistogram(bins_per_decade, min_value=1e-9)
        self._tap = _WaitTap(self.queue_wait)
        self._timer: Optional[PeriodicTimer] = None
        self._net = None
        self._registry = None
        self.ports: list = []
        self.port_names: list[str] = []
        self.short_threshold = 100_000
        self.meta: dict[str, Any] = {}

    # -- wiring -----------------------------------------------------------

    def wait_tap(self) -> Tracer:
        """The queueing-delay trace sink to tee into the run's tracer."""
        return self._tap

    def attach(self, net, registry=None, balancers=None, *, ports=None,
               short_threshold: int = 100_000) -> "FlightRecorder":
        """Install the sample timer and audit hooks on a built fabric.

        Call after balancers are attached (the audit hook needs them).
        ``ports`` defaults to every leaf uplink — where the paper's
        congestion story happens.
        """
        if self._net is not None:
            raise ConfigError("recorder is already attached")
        self._net = net
        self._registry = registry
        self.ports = list(ports) if ports is not None else net.all_leaf_uplink_ports()
        self.port_names = [p.name for p in self.ports]
        self.short_threshold = int(short_threshold)
        if balancers:
            for lb in balancers.values():
                if hasattr(lb, "decision_listeners"):
                    lb.decision_listeners.append(self._on_decision)
        if registry is not None:
            registry.subscribe_completion(self._on_completion)
        self._timer = PeriodicTimer(net.sim, self.cadence_now, self._sample)
        return self

    def stop(self) -> None:
        """Cancel the sampling timer (idempotent)."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    # -- ingest -----------------------------------------------------------

    def _on_completion(self, stats) -> None:
        fct = stats.fct
        if fct is None:
            return
        if stats.flow.size < self.short_threshold:
            self.fct_short.observe(fct)
        else:
            self.fct_long.observe(fct)

    def _on_decision(self, now: float, lb, decision) -> None:
        ring = self._audit.get(lb.switch.name)
        if ring is None:
            ring = self._audit[lb.switch.name] = _AuditRing(self.max_samples)
        ring.add(now, decision, lb.load.rate_bps)

    def _sample(self) -> None:
        self._times.append(self._net.sim.now)
        qrow: list[int] = []
        busyrow: list[float] = []
        bytesrow: list[int] = []
        ecnrow: list[int] = []
        droprow: list[int] = []
        for p in self.ports:
            qlen, busy, btx, ecn, drops = p.snapshot()
            qrow.append(qlen)
            busyrow.append(busy)
            bytesrow.append(btx)
            ecnrow.append(ecn)
            droprow.append(drops)
        self._qdepth.append(qrow)
        self._busy.append(busyrow)
        self._bytes.append(bytesrow)
        self._ecn.append(ecnrow)
        self._drops.append(droprow)
        active_short = active_long = retx = 0
        if self._registry is not None:
            threshold = self.short_threshold
            for s in self._registry.all_stats():
                retx += s.retransmits
                if s.syn_sent is not None and s.completed is None:
                    if s.flow.size < threshold:
                        active_short += 1
                    else:
                        active_long += 1
        elif self._net is not None:
            for sw in self._net.switches.values():
                counts = sw.lb_flow_counts()
                if counts is not None:
                    active_short += counts[0]
                    active_long += counts[1]
        self._active_short.append(active_short)
        self._active_long.append(active_long)
        self._retransmits.append(retx)
        if len(self._times) >= self.max_samples:
            self._decimate()

    def _decimate(self) -> None:
        """Halve the stored rows and double the sampling interval.

        The kept phase retains the newest row, so surviving samples stay
        uniformly spaced across the cut (the next sample lands one new
        interval after the last kept one).
        """
        keep = (len(self._times) - 1) % 2
        for name in ("_times", "_qdepth", "_busy", "_bytes", "_ecn", "_drops",
                     "_active_short", "_active_long", "_retransmits"):
            setattr(self, name, getattr(self, name)[keep::2])
        self.cadence_now *= 2.0
        if self._timer is not None:
            self._timer.set_interval(self.cadence_now)

    # -- views ------------------------------------------------------------

    @property
    def n_samples(self) -> int:
        return len(self._times)

    def finalize(self, *, scheme: str = "?", seed: Optional[int] = None,
                 horizon: Optional[float] = None,
                 extra: Optional[dict] = None) -> None:
        """Stamp run identity into the artefact's metadata."""
        self.meta = {
            "schema": RECORDING_SCHEMA,
            "version": __version__,
            "scheme": scheme,
            "seed": seed,
            "horizon_s": horizon,
            "cadence_s": self.cadence,
            "cadence_final_s": self.cadence_now,
            "max_samples": self.max_samples,
            "n_samples": self.n_samples,
            "short_threshold": self.short_threshold,
        }
        if extra:
            self.meta.update(extra)

    # -- persistence ------------------------------------------------------

    def to_arrays(self) -> dict[str, np.ndarray]:
        """The full recording as named arrays (the ``.npz`` layout)."""
        n = len(self._times)
        p = len(self.port_names)
        arrays: dict[str, np.ndarray] = {
            "times": np.asarray(self._times, dtype=np.float64),
            "port_names": np.asarray(self.port_names, dtype=np.str_),
            "qdepth": np.asarray(self._qdepth, dtype=np.int64).reshape(n, p),
            "busy_time": np.asarray(self._busy, dtype=np.float64).reshape(n, p),
            "bytes_tx": np.asarray(self._bytes, dtype=np.int64).reshape(n, p),
            "ecn_marked": np.asarray(self._ecn, dtype=np.int64).reshape(n, p),
            "drops": np.asarray(self._drops, dtype=np.int64).reshape(n, p),
            "active_short": np.asarray(self._active_short, dtype=np.int64),
            "active_long": np.asarray(self._active_long, dtype=np.int64),
            "retransmits": np.asarray(self._retransmits, dtype=np.int64),
        }
        # q_th audit: flattened over switches, name-sorted for determinism
        switches = sorted(self._audit)
        rows = {
            "t": [], "switch_idx": [], "qth": [], "raw": [], "m_short": [],
            "m_long": [], "x_packets": [], "deadline": [], "load_bps": [],
        }
        regimes: list[str] = []
        for idx, name in enumerate(switches):
            ring = self._audit[name]
            rows["t"].extend(ring.times)
            rows["switch_idx"].extend([idx] * len(ring.times))
            rows["qth"].extend(ring.qth)
            rows["raw"].extend(ring.raw)
            rows["m_short"].extend(ring.m_short)
            rows["m_long"].extend(ring.m_long)
            rows["x_packets"].extend(ring.x_packets)
            rows["deadline"].extend(ring.deadline)
            rows["load_bps"].extend(ring.load_bps)
            regimes.extend(ring.regime)
        arrays["audit_switches"] = np.asarray(switches, dtype=np.str_)
        arrays["audit_regime"] = np.asarray(regimes, dtype=np.str_)
        for key, values in rows.items():
            dtype = np.int64 if key in ("switch_idx", "qth", "m_short", "m_long") \
                else np.float64
            arrays[f"audit_{key}"] = np.asarray(values, dtype=dtype)
        for name, hist in (("fct_short", self.fct_short),
                           ("fct_long", self.fct_long),
                           ("queue_wait", self.queue_wait)):
            for key, arr in hist.to_arrays().items():
                arrays[f"hist_{name}_{key}"] = arr
        arrays["meta_json"] = np.asarray(json.dumps(self.meta, sort_keys=True))
        return arrays

    def save(self, path: str | Path) -> Path:
        """Write the recording as a compressed ``.npz`` artefact."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        np.savez_compressed(path, **self.to_arrays())
        # numpy appends .npz when missing; mirror that for the caller
        return path if path.suffix == ".npz" else path.with_name(path.name + ".npz")


class RecordedRun:
    """A loaded flight recording, with derived-series helpers.

    Construct via :meth:`load`; all arrays from
    :meth:`FlightRecorder.to_arrays` are available through ``data``.
    """

    def __init__(self, data: dict[str, np.ndarray]):
        self.data = data
        meta_raw = data.get("meta_json")
        self.meta: dict[str, Any] = json.loads(str(np.asarray(meta_raw)[()])) \
            if meta_raw is not None else {}

    @classmethod
    def load(cls, path: str | Path) -> "RecordedRun":
        path = Path(path)
        if not path.exists():
            raise ConfigError(f"recording {path} does not exist")
        try:
            with np.load(path, allow_pickle=False) as npz:
                data = {k: npz[k] for k in npz.files}
        except (OSError, ValueError) as exc:
            raise ConfigError(f"{path} is not a flight recording: {exc}") from None
        if "times" not in data or "meta_json" not in data:
            raise ConfigError(f"{path} is not a flight recording (missing keys)")
        return cls(data)

    # -- basic accessors --------------------------------------------------

    @property
    def times(self) -> np.ndarray:
        return self.data["times"]

    @property
    def port_names(self) -> list[str]:
        return [str(s) for s in self.data["port_names"]]

    @property
    def n_samples(self) -> int:
        return int(self.times.size)

    @property
    def qdepth(self) -> np.ndarray:
        """(n_samples, n_ports) queue depth in packets."""
        return self.data["qdepth"]

    # -- derived series ---------------------------------------------------

    def mid_times(self) -> np.ndarray:
        """Window midpoints for the per-window rate series."""
        t = self.times
        return (t[1:] + t[:-1]) / 2.0 if t.size > 1 else np.zeros(0)

    def _dt(self) -> np.ndarray:
        dt = np.diff(self.times)
        dt[dt <= 0] = np.nan
        return dt

    def utilization(self) -> np.ndarray:
        """(n_samples-1, n_ports) per-window link utilisation in [0, 1]."""
        if self.n_samples < 2:
            return np.zeros((0, len(self.port_names)))
        busy = self.data["busy_time"]
        util = np.diff(busy, axis=0) / self._dt()[:, None]
        return np.clip(util, 0.0, 1.0)

    def throughput_bps(self) -> np.ndarray:
        """Fabric-wide delivered rate per window (bits/s over all ports)."""
        if self.n_samples < 2:
            return np.zeros(0)
        total = self.data["bytes_tx"].sum(axis=1).astype(float)
        return np.diff(total) * 8.0 / self._dt()

    def rate_per_second(self, key: str) -> np.ndarray:
        """Per-window rate of a cumulative counter (``ecn_marked``,
        ``drops``, ``retransmits``), events/s fabric-wide."""
        arr = self.data[key].astype(float)
        if arr.ndim == 2:
            arr = arr.sum(axis=1)
        if arr.size < 2:
            return np.zeros(0)
        return np.diff(arr) / self._dt()

    # -- q_th audit -------------------------------------------------------

    def audit_switches(self) -> list[str]:
        return [str(s) for s in self.data.get("audit_switches", np.zeros(0, np.str_))]

    def audit(self, switch: Optional[str] = None) -> dict[str, np.ndarray]:
        """The decision-audit columns, optionally for one switch."""
        keys = ("t", "qth", "raw", "m_short", "m_long", "x_packets",
                "deadline", "load_bps")
        out = {k: self.data.get(f"audit_{k}", np.zeros(0)) for k in keys}
        out["regime"] = self.data.get("audit_regime", np.zeros(0, np.str_))
        if switch is not None:
            switches = self.audit_switches()
            if switch not in switches:
                raise ConfigError(f"switch {switch!r} has no audit rows "
                                  f"(recorded: {switches})")
            mask = self.data["audit_switch_idx"] == switches.index(switch)
            out = {k: v[mask] for k, v in out.items()}
        return out

    # -- histograms -------------------------------------------------------

    def histogram(self, name: str) -> LogHistogram:
        """Rehydrate one of ``fct_short`` / ``fct_long`` / ``queue_wait``."""
        try:
            return LogHistogram.from_arrays(
                self.data[f"hist_{name}_buckets"],
                self.data[f"hist_{name}_counts"],
                self.data[f"hist_{name}_meta"],
            )
        except KeyError:
            raise ConfigError(f"no histogram {name!r} in recording") from None

    # -- flat summary (repro diff / bench rows) ---------------------------

    def summary_row(self) -> dict[str, Any]:
        """One flat numeric row, comparable across runs by ``repro diff``."""
        row: dict[str, Any] = {
            "scheme": self.meta.get("scheme", "?"),
            "horizon_s": self.meta.get("horizon_s"),
            "recorded_samples": self.n_samples,
        }
        for name in ("fct_short", "fct_long", "queue_wait"):
            h = self.histogram(name)
            row[f"{name}_n"] = h.count
            row[f"{name}_mean_s"] = h.mean()
            for p in (50, 95, 99):
                row[f"{name}_p{p}_s"] = h.percentile(p)
        util = self.utilization()
        row["mean_utilization"] = float(np.nanmean(util)) if util.size else 0.0
        for key in ("ecn_marked", "drops", "retransmits"):
            arr = self.data[key]
            total = arr[-1].sum() if arr.ndim == 2 and arr.size else (
                arr[-1] if arr.size else 0)
            row[f"total_{key}"] = int(total)
        qd = self.qdepth
        row["peak_qdepth"] = int(qd.max()) if qd.size else 0
        row["mean_qdepth"] = float(qd.mean()) if qd.size else 0.0
        return row
