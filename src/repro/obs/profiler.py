"""Simulator self-profiler: where does simulation wall time go?

ROADMAP item 1 (a sharded/vectorized core) needs a component-level
profile before any partitioning cut can be chosen; this module is that
measurement.  An :class:`EngineProfiler` installed via
:meth:`~repro.sim.engine.Simulator.set_profiler` makes the kernel run
events through an attributing loop: every executed handler increments a
per-component event count, and one event in ``sample_every`` is timed
with ``perf_counter``.  Components are handler qualnames
(``Port._transmission_done``, ``Switch.receive``, …), which map directly
onto the modules a sharding cut would split.

The profiled loop mirrors the fast path's semantics exactly, so a
profiled seeded run executes the same event sequence as an unprofiled
one — profiling perturbs wall time only, never simulation results.  With
no profiler installed the kernel takes its normal loop; the check is
once per ``run()`` call, so the off state costs nothing per event.
"""

from __future__ import annotations

from collections import Counter
from typing import Optional

from repro.errors import ConfigError

__all__ = ["EngineProfiler", "format_profile"]


def format_profile(report: dict) -> str:
    """Render a persisted profile dict (:meth:`EngineProfiler.report`).

    The dict-shaped twin of :meth:`EngineProfiler.format_report`, for
    profiles read back from JSON (``repro bench --micro --profile``
    rows, ``RunMetrics.extras['profile']``).
    """
    lines = [
        f"profile: {report.get('events', 0)} events over"
        f" {report.get('runs', 0)} run(s), {report.get('wall_s', 0.0):.3f} s"
        f" wall, timing 1/{report.get('sample_every', '?')} events",
        f"  {'component':<44} {'events':>10} {'ev%':>6} {'time%':>6} {'est_s':>8}",
    ]
    for r in report.get("components", []):
        lines.append(
            f"  {r['component']:<44} {r['events']:>10}"
            f" {r['event_share'] * 100:>5.1f}% {r['time_share'] * 100:>5.1f}%"
            f" {r['est_s']:>8.3f}"
        )
    return "\n".join(lines)


class EngineProfiler:
    """Accumulates per-handler event counts and sampled wall time.

    Parameters
    ----------
    sample_every:
        Time one event in this many (the rest are only counted).  1
        times every event — accurate but slow; the default keeps the
        ``perf_counter`` pair off ~94% of events.

    Attributes
    ----------
    counts:
        handler qualname -> events executed (every event, not sampled).
    sampled_time:
        handler qualname -> summed wall seconds over its sampled events.
    sampled_events:
        handler qualname -> how many of its events were timed.
    wall_s:
        total wall seconds spent inside profiled ``run()`` calls.
    runs:
        number of profiled ``run()`` invocations.
    """

    __slots__ = ("sample_every", "counts", "sampled_time", "sampled_events",
                 "wall_s", "runs")

    def __init__(self, sample_every: int = 16):
        if sample_every < 1:
            raise ConfigError(f"sample_every must be >= 1, got {sample_every!r}")
        self.sample_every = int(sample_every)
        self.counts: Counter = Counter()
        self.sampled_time: Counter = Counter()
        self.sampled_events: Counter = Counter()
        self.wall_s = 0.0
        self.runs = 0

    def install(self, sim) -> "EngineProfiler":
        """Attach to a simulator; returns ``self``."""
        sim.set_profiler(self)
        return self

    # -- views -------------------------------------------------------------

    @property
    def total_events(self) -> int:
        """Events executed under the profiler."""
        return sum(self.counts.values())

    def components(self, top: Optional[int] = None) -> list[dict]:
        """Per-component rows, largest estimated time share first.

        Each row carries the component's event count, its share of all
        events, and its share of sampled wall time (the best available
        estimate of its share of total run time).  ``est_s`` scales the
        sampled time by the component's sampling ratio to estimate its
        total wall seconds.
        """
        total_events = self.total_events
        total_sampled = sum(self.sampled_time.values())
        rows = []
        for name in self.counts:
            n = self.counts[name]
            s_time = self.sampled_time.get(name, 0.0)
            s_events = self.sampled_events.get(name, 0)
            est_s = s_time * (n / s_events) if s_events else 0.0
            rows.append({
                "component": name,
                "events": n,
                "event_share": n / total_events if total_events else 0.0,
                "time_share": s_time / total_sampled if total_sampled else 0.0,
                "sampled_events": s_events,
                "est_s": est_s,
            })
        rows.sort(key=lambda r: (-r["time_share"], -r["events"], r["component"]))
        return rows[:top] if top is not None else rows

    def report(self, top: Optional[int] = None) -> dict:
        """The persistable profile (``RunMetrics.extras['profile']``)."""
        return {
            "sample_every": self.sample_every,
            "events": self.total_events,
            "wall_s": self.wall_s,
            "runs": self.runs,
            "components": [
                {
                    "component": r["component"],
                    "events": r["events"],
                    "event_share": round(r["event_share"], 6),
                    "time_share": round(r["time_share"], 6),
                    "est_s": round(r["est_s"], 6),
                }
                for r in self.components(top)
            ],
        }

    def format_report(self, top: int = 12) -> str:
        """Human-readable table for ``repro bench --profile``."""
        rows = self.components(top)
        lines = [
            f"profile: {self.total_events} events over {self.runs} run(s), "
            f"{self.wall_s:.3f} s wall, timing 1/{self.sample_every} events",
            f"  {'component':<44} {'events':>10} {'ev%':>6} {'time%':>6} {'est_s':>8}",
        ]
        for r in rows:
            lines.append(
                f"  {r['component']:<44} {r['events']:>10}"
                f" {r['event_share'] * 100:>5.1f}% {r['time_share'] * 100:>5.1f}%"
                f" {r['est_s']:>8.3f}"
            )
        return "\n".join(lines)
