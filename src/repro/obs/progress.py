"""Heartbeat progress for long sweeps.

Figure sweeps run tens of independent simulations across worker
processes; without feedback a multi-minute sweep is indistinguishable
from a hang.  :class:`ProgressReporter` prints one line per completed
task — count, percentage, elapsed time, and a naive ETA — to stderr so
it composes with CSV/table output on stdout.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Optional, TextIO

from repro.errors import ConfigError

__all__ = ["ProgressReporter"]


class ProgressReporter:
    """Prints per-task completion and ETA for a fixed-size batch.

    Parameters
    ----------
    total:
        Number of tasks in the batch.
    label:
        Prefix identifying the batch (e.g. ``"sweep"``).
    stream:
        Output stream; defaults to ``sys.stderr``.
    min_interval:
        Minimum seconds between heartbeat lines (the final task always
        reports), so thousand-task sweeps do not flood the terminal.
    """

    def __init__(
        self,
        total: int,
        *,
        label: str = "sweep",
        stream: Optional[TextIO] = None,
        min_interval: float = 0.0,
    ):
        if total < 1:
            raise ConfigError(f"total must be >= 1, got {total!r}")
        self.total = int(total)
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = float(min_interval)
        self.done = 0
        self._t0 = time.perf_counter()
        self._last_line = float("-inf")

    def elapsed(self) -> float:
        """Wall seconds since the reporter was created."""
        return time.perf_counter() - self._t0

    def eta(self) -> float:
        """Naive remaining-time estimate from the mean per-task rate."""
        if self.done == 0:
            return float("nan")
        return self.elapsed() / self.done * (self.total - self.done)

    def task_done(self, info: Any = None) -> None:
        """Record one finished task and (rate-limited) print a heartbeat."""
        self.done += 1
        now = time.perf_counter()
        final = self.done >= self.total
        if not final and now - self._last_line < self.min_interval:
            return
        self._last_line = now
        elapsed = now - self._t0
        pct = 100.0 * self.done / self.total
        line = (
            f"[{self.label}] {self.done}/{self.total} ({pct:.0f}%)"
            f" elapsed {elapsed:.1f}s"
        )
        if not final:
            line += f" eta {self.eta():.1f}s"
        if info is not None:
            line += f" — {info}"
        print(line, file=self.stream, flush=True)
