"""Heartbeat progress for long sweeps.

Figure sweeps run tens of independent simulations across worker
processes; without feedback a multi-minute sweep is indistinguishable
from a hang.  :class:`ProgressReporter` prints one line per completed
task — count, percentage, elapsed time, and a naive ETA — to stderr so
it composes with CSV/table output on stdout.

With the result cache in play a "completed" task can mean three
different things, so every task is recorded with a *kind* —
``"computed"`` (simulated now), ``"cached"`` (served from the result
cache), or ``"failed"`` (a recorded :class:`TaskFailure` row) — and the
heartbeat breaks the total down accordingly.  The ETA is based on the
*computed* rate only: cache hits resolve in microseconds and would
otherwise make the estimate absurdly optimistic for the simulations
still to run.

Fleet sweeps (:mod:`repro.fleet`) report differently: progress there is
a property of the shared journal, not of any one process, and several
workers advance it at once.  :func:`format_fleet_heartbeat` renders a
:func:`~repro.fleet.fleet_status` snapshot — per-state cell counts plus
per-worker liveness — into the one-line heartbeat the coordinator
prints while it babysits the fleet.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Optional, TextIO

from repro.errors import ConfigError

__all__ = ["ProgressReporter", "format_fleet_heartbeat", "format_fleet_workers"]

_KINDS = ("computed", "cached", "failed")


def format_fleet_heartbeat(status: dict, *, label: str = "fleet") -> str:
    """One heartbeat line for a :func:`~repro.fleet.fleet_status` snapshot.

    Shows terminal progress (done/total with failures), what is in
    flight (running cells, cells waiting out a retry backoff), and how
    many workers are alive — a worker is *live* while its status-file
    heartbeat is younger than the lease TTL, so a SIGKILLed worker drops
    out of the count within one TTL.
    """
    cells = status.get("cells", {})
    workers = status.get("workers", [])
    total = cells.get("total", 0)
    live = sum(1 for w in workers if w.get("live"))
    line = (f"[{label}] {cells.get('done', 0)}/{total} done")
    extras = []
    if cells.get("failed"):
        extras.append(f"{cells['failed']} failed")
    if cells.get("running"):
        extras.append(f"{cells['running']} running")
    if cells.get("backoff"):
        extras.append(f"{cells['backoff']} backing off")
    if extras:
        line += f" [{', '.join(extras)}]"
    line += f" — {live}/{len(workers)} worker(s) live"
    return line


def format_fleet_workers(status: dict) -> list[str]:
    """Per-worker liveness lines for ``repro fleet workers``."""
    lines = []
    for w in status.get("workers", []):
        mark = "live" if w.get("live") else "gone"
        age = w.get("age", float("inf"))
        age_s = f"{age:.1f}s ago" if age != float("inf") else "never"
        cell = w.get("cell") or "-"
        lines.append(
            f"{w.get('worker', '?')}: {mark} ({w.get('state', '?')},"
            f" heartbeat {age_s}) pid={w.get('pid')}"
            f" done={w.get('done', 0)} failed={w.get('failed', 0)}"
            f" cell={cell}")
    return lines


class ProgressReporter:
    """Prints per-task completion and ETA for a fixed-size batch.

    Parameters
    ----------
    total:
        Number of tasks in the batch.
    label:
        Prefix identifying the batch (e.g. ``"sweep"``).
    stream:
        Output stream; defaults to ``sys.stderr``.
    min_interval:
        Minimum seconds between heartbeat lines (the final task always
        reports), so thousand-task sweeps do not flood the terminal.
    """

    def __init__(
        self,
        total: int,
        *,
        label: str = "sweep",
        stream: Optional[TextIO] = None,
        min_interval: float = 0.0,
    ):
        if total < 1:
            raise ConfigError(f"total must be >= 1, got {total!r}")
        self.total = int(total)
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = float(min_interval)
        self.done = 0
        self.counts: dict[str, int] = {kind: 0 for kind in _KINDS}
        self._t0 = time.perf_counter()
        self._last_line = float("-inf")

    @property
    def computed(self) -> int:
        return self.counts["computed"]

    @property
    def cached(self) -> int:
        return self.counts["cached"]

    @property
    def failed(self) -> int:
        return self.counts["failed"]

    def elapsed(self) -> float:
        """Wall seconds since the reporter was created."""
        return time.perf_counter() - self._t0

    def eta(self) -> float:
        """Remaining-time estimate from the mean *computed*-task rate.

        Cache hits are excluded from the rate (they are effectively
        free); before anything has been computed the estimate falls back
        to the overall rate, or NaN with no tasks done at all.
        """
        if self.done == 0:
            return float("nan")
        rate_basis = self.computed if self.computed else self.done
        return self.elapsed() / rate_basis * (self.total - self.done)

    def task_done(self, info: Any = None, *, kind: str = "computed") -> None:
        """Record one finished task and (rate-limited) print a heartbeat.

        ``kind`` is ``"computed"`` (default), ``"cached"``, or
        ``"failed"``; the heartbeat shows the per-kind breakdown as soon
        as any task is non-computed.
        """
        if kind not in _KINDS:
            raise ConfigError(
                f"kind must be one of {_KINDS}, got {kind!r}")
        self.done += 1
        self.counts[kind] += 1
        now = time.perf_counter()
        final = self.done >= self.total
        if not final and now - self._last_line < self.min_interval:
            return
        self._last_line = now
        elapsed = now - self._t0
        pct = 100.0 * self.done / self.total
        line = (
            f"[{self.label}] {self.done}/{self.total} ({pct:.0f}%)"
        )
        if self.cached or self.failed:
            parts = [f"{self.computed} computed", f"{self.cached} cached"]
            if self.failed:
                parts.append(f"{self.failed} failed")
            line += f" [{', '.join(parts)}]"
        line += f" elapsed {elapsed:.1f}s"
        if not final:
            line += f" eta {self.eta():.1f}s"
        if info is not None:
            line += f" — {info}"
        print(line, file=self.stream, flush=True)
