"""Per-flow span forensics: hop-by-hop timelines with tail sampling.

Aggregate metrics (percentiles, per-port counters) say *that* the tail
is slow; this module answers *why this flow* was slow.  A
:class:`SpanBuffer` installs as the run's trace sink and assembles every
flow's trace points — queue entries with depth/ECN/wait, balancer
reroutes, RTOs, out-of-order arrivals, drops — into a per-flow span.

Keeping full hop detail for every flow is unaffordable, so the buffer
does **deterministic tail sampling**:

* every flow gets a cheap *skeleton* (aggregate counters: total queue
  wait, waits attributed to the flow it sat behind, drop/ooo/RTO
  counts, ports visited);
* full hop timelines are retained only for (a) a seeded hash sample of
  flows, (b) the top-K slowest flows per size class, and (c) any flow a
  fault touched (a fault-reason drop, or the flow traversed a port named
  in a fault event before completing).

Retention is a pure function of the experiment seed: the hash sample is
order-independent, top-K eviction tie-breaks on flow id, and the saved
file is serialized with sorted keys (gzip with ``mtime=0``), so two
seeded runs produce byte-identical span files.

The span file (``*.spans.json`` / ``.gz``) feeds ``repro explain``, the
report's "Tail forensics" section, and span-aware ``repro diff`` columns
via :func:`load_spans`, :func:`format_explain`, and :func:`summary_row`.
"""

from __future__ import annotations

import gzip
import hashlib
import heapq
import json
from collections import Counter
from heapq import heappush, heapreplace
from pathlib import Path
from typing import Any, Optional

from repro.errors import ConfigError
from repro.sim.trace import Tracer
from repro.units import KB

__all__ = [
    "SpanBuffer",
    "FlowSpan",
    "load_spans",
    "format_explain",
    "explain_payload",
    "summary_row",
    "tail_flows",
]

FORMAT = "repro-spans-v1"

#: FCT components the classifier attributes time to, in tie-break order
COMPONENTS = ("queueing", "retransmit", "reorder", "reroute")


def _sample_fraction(seed: int, flow_id: int) -> float:
    """Deterministic, order-independent per-flow hash in [0, 1)."""
    digest = hashlib.sha256(f"{seed}:{flow_id}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


class FlowSpan:
    """One flow's forensic record: skeleton aggregates + optional hops."""

    __slots__ = (
        "flow_id", "hops", "truncated_hops", "retained",
        "queue_wait_s", "queue_busy_s", "queue_busy_until",
        "behind", "pending_head",
        "enqueues", "dequeues", "drops", "drop_reasons", "fault_drop",
        "ecn_marks", "reroutes", "retransmits", "rtos", "rto_wait_s",
        "ooo", "ack_events", "ports", "port_wait", "size_class", "fct",
    )

    def __init__(self, flow_id: int):
        self.flow_id = flow_id
        #: full hop timeline [(t, kind, fields)] — None once downgraded
        self.hops: Optional[list] = []
        self.truncated_hops = 0
        #: why the full timeline was kept: "sampled" | "tail" | "fault" | None
        self.retained: Optional[str] = None
        #: summed per-packet waits (packet-seconds; many packets of one
        #: flow wait concurrently, so this can far exceed the FCT)
        self.queue_wait_s = 0.0
        #: wall-clock union of "at least one packet of this flow is
        #: waiting in some queue" — the FCT-comparable queueing measure
        self.queue_busy_s = 0.0
        self.queue_busy_until = 0.0
        #: (head_flow, port) -> seconds spent queued behind that flow
        self.behind: Counter = Counter()
        #: (port, seq) -> head flow at enqueue, awaiting the dequeue wait
        self.pending_head: dict = {}
        self.enqueues = 0
        self.dequeues = 0
        self.drops = 0
        self.drop_reasons: Counter = Counter()
        self.fault_drop = False
        self.ecn_marks = 0
        self.reroutes = 0
        self.retransmits = 0
        self.rtos = 0
        self.rto_wait_s = 0.0
        self.ooo = 0
        self.ack_events = 0
        self.ports: set = set()
        #: port -> summed data-direction queue wait (the per-hop timings)
        self.port_wait: Counter = Counter()
        self.size_class: Optional[str] = None
        self.fct: Optional[float] = None

    def downgrade(self) -> None:
        """Drop the full timeline, keeping only the skeleton."""
        self.hops = None
        self.truncated_hops = 0
        self.retained = None
        self.pending_head.clear()


class SpanBuffer(Tracer):
    """Bounded per-flow span assembly with deterministic tail sampling.

    Installs as the fabric's trace sink (possibly tee'd with other
    sinks).  Call :meth:`attach` after balancers are bound, and
    :meth:`finalize` when the run ends; :meth:`save` then writes the
    deterministic span file.

    Parameters
    ----------
    seed:
        The experiment seed; the retention sample is a pure function of
        ``(seed, flow_id)``.
    sample_rate:
        Fraction of flows whose full timeline is kept unconditionally.
    top_k:
        Slowest flows per size class (short/long) kept in full.
    short_threshold:
        Size boundary between the two classes, bytes.
    max_hops:
        Per-flow timeline bound; later events are counted, not stored.
    max_decisions:
        Per-switch bound on recorded ``q_th`` decisions.
    """

    enabled = True

    def __init__(
        self,
        seed: int,
        *,
        sample_rate: float = 0.02,
        top_k: int = 5,
        short_threshold: int = KB(100),
        max_hops: int = 256,
        max_decisions: int = 4096,
    ):
        if not 0.0 <= sample_rate <= 1.0:
            raise ConfigError(f"sample_rate must be in [0, 1], got {sample_rate!r}")
        if top_k < 0 or max_hops < 1 or max_decisions < 1:
            raise ConfigError("top_k must be >= 0; max_hops/max_decisions >= 1")
        self.seed = int(seed)
        self.sample_rate = float(sample_rate)
        self.top_k = int(top_k)
        self.short_threshold = int(short_threshold)
        self.max_hops = int(max_hops)
        self.max_decisions = int(max_decisions)
        self._flows: dict[int, FlowSpan] = {}
        #: flow-less records: the fault timeline [(t, kind, fields)]
        self._events: list = []
        #: union of directed port names named by fault events so far
        self._fault_ports: set = set()
        #: node -> [(t, decision-dict)], bounded
        self._decisions: dict[str, list] = {}
        self._decisions_dropped: Counter = Counter()
        #: size class -> min-heap of (fct, flow_id) tail candidates
        self._topk: dict[str, list] = {"short": [], "long": []}
        self._registry = None
        self.data: Optional[dict] = None

    # -- wiring ------------------------------------------------------------

    def attach(self, registry, balancers: Optional[dict] = None) -> "SpanBuffer":
        """Subscribe to flow completions and balancer q_th decisions."""
        self._registry = registry
        registry.subscribe_completion(self._on_completion)
        for node, lb in (balancers or {}).items():
            listeners = getattr(lb, "decision_listeners", None)
            if listeners is not None:
                listeners.append(self._make_decision_listener(node))
        return self

    def _make_decision_listener(self, node: str):
        def on_decision(now: float, _balancer, decision) -> None:
            rows = self._decisions.setdefault(node, [])
            if len(rows) >= self.max_decisions:
                self._decisions_dropped[node] += 1
                return
            row = {"t": now}
            row.update(decision.as_dict())
            rows.append(row)

        return on_decision

    # -- the sink ----------------------------------------------------------

    def emit(self, time: float, kind: str, **fields: Any) -> None:
        # Hot path: one call per enqueue/dequeue of every packet in the
        # run.  Bind the lookup method once and order branches by
        # frequency — this is most of the spans-on overhead.
        get = fields.get
        flow_id = get("flow")
        if flow_id is None:
            # Flow-less record: a fault transition (or future global kind).
            self._events.append((time, kind, fields))
            ports = get("ports")
            if ports:
                self._fault_ports.update(ports)
            return
        span = self._flows.get(flow_id)
        if span is None:
            span = self._flows[flow_id] = FlowSpan(flow_id)
        if get("is_ack"):
            # ACK-direction queue events: counted, never in the timeline
            # (they double the volume and rarely explain a tail).
            span.ack_events += 1
            return
        if kind == "enqueue":
            span.enqueues += 1
            head = get("head")
            if head is not None and head != flow_id:
                span.pending_head[(get("port"), get("seq"))] = head
        elif kind == "dequeue":
            span.dequeues += 1
            wait = get("wait", 0.0)
            port = get("port")
            span.queue_wait_s += wait
            if wait > 0:
                # Incremental interval union over [time - wait, time].
                # Dequeues arrive in time order, so tracking the covered
                # watermark gives the union in O(1) per event (slightly
                # undercounting only when a long wait at one hop fully
                # encloses earlier waits at another).
                start = time - wait
                busy_until = span.queue_busy_until
                if time > busy_until:
                    span.queue_busy_s += time - (
                        start if start > busy_until else busy_until)
                    span.queue_busy_until = time
            span.ports.add(port)
            span.port_wait[port] += wait
            if span.pending_head:
                head = span.pending_head.pop((port, get("seq")), None)
                if head is not None:
                    span.behind[(head, port)] += wait
        elif kind == "drop":
            span.drops += 1
            reason = get("reason")
            if get("injected"):
                reason = "injected_loss"
            if reason:
                span.drop_reasons[reason] += 1
                if reason in ("link_down", "injected_loss"):
                    span.fault_drop = True
            span.ports.add(get("port"))
        elif kind == "mark":
            span.ecn_marks += 1
        elif kind == "reroute":
            span.reroutes += 1
        elif kind == "retransmit":
            span.retransmits += 1
        elif kind == "rto":
            span.rtos += 1
            span.rto_wait_s += get("waited", 0.0)
        elif kind == "ooo":
            span.ooo += 1
        hops = span.hops
        if hops is not None:
            if len(hops) < self.max_hops:
                hops.append((time, kind, fields))
            else:
                span.truncated_hops += 1

    # -- retention ---------------------------------------------------------

    def _is_sampled(self, flow_id: int) -> bool:
        return _sample_fraction(self.seed, flow_id) < self.sample_rate

    def _fault_affected(self, span: FlowSpan) -> bool:
        return span.fault_drop or bool(span.ports & self._fault_ports)

    def _on_completion(self, stats) -> None:
        span = self._flows.get(stats.flow.id)
        if span is None:
            span = self._flows[stats.flow.id] = FlowSpan(stats.flow.id)
        span.fct = stats.fct
        cls = "short" if stats.flow.size <= self.short_threshold else "long"
        span.size_class = cls
        if span.hops is None:
            return
        if self._is_sampled(span.flow_id):
            span.retained = "sampled"
            return
        if self._fault_affected(span):
            span.retained = "fault"
            return
        heap = self._topk[cls]
        item = (span.fct if span.fct is not None else 0.0, span.flow_id)
        if len(heap) < self.top_k:
            heappush(heap, item)
            span.retained = "tail"
        elif item > heap[0]:
            _, evicted = heapreplace(heap, item)
            self._flows[evicted].downgrade()
            span.retained = "tail"
        else:
            span.downgrade()

    # -- finalization ------------------------------------------------------

    def finalize(self, horizon: Optional[float] = None) -> dict:
        """Freeze the buffer into the serializable span document."""
        registry = self._registry
        for span in self._flows.values():
            if span.size_class is None and registry is not None:
                # Incomplete flow: classify from the descriptor and apply
                # the retention policy now that all faults are known.
                try:
                    flow = registry.flow(span.flow_id)
                except Exception:
                    flow = None
                if flow is not None:
                    span.size_class = (
                        "short" if flow.size <= self.short_threshold else "long")
            if span.size_class is None and span.retained is None and span.hops is not None:
                # No registry to consult (unit-test use): sample-only policy.
                if self._is_sampled(span.flow_id):
                    span.retained = "sampled"
                elif self._fault_affected(span):
                    span.retained = "fault"
                else:
                    span.downgrade()
            elif span.fct is None and span.hops is not None and span.retained is None:
                if self._is_sampled(span.flow_id):
                    span.retained = "sampled"
                elif self._fault_affected(span):
                    span.retained = "fault"
                else:
                    span.downgrade()

        flows_doc = {}
        for fid in sorted(self._flows):
            flows_doc[str(fid)] = self._flow_doc(self._flows[fid])

        totals = self._totals()
        self.data = {
            "format": FORMAT,
            "seed": self.seed,
            "policy": {
                "sample_rate": self.sample_rate,
                "top_k": self.top_k,
                "short_threshold": self.short_threshold,
                "max_hops": self.max_hops,
            },
            "horizon": horizon,
            "events": [
                dict({"t": t, "kind": kind}, **fields)
                for (t, kind, fields) in self._events
            ],
            "decisions": {
                node: rows for node, rows in sorted(self._decisions.items())
            },
            "decisions_dropped": dict(sorted(self._decisions_dropped.items())),
            "flows": flows_doc,
            "totals": totals,
        }
        return self.data

    def _flow_doc(self, span: FlowSpan) -> dict:
        stats = None
        if self._registry is not None:
            try:
                stats = self._registry.stats(span.flow_id)
            except Exception:
                stats = None
        doc: dict[str, Any] = {
            "class": span.size_class,
            "fct": span.fct,
            "queue_wait_s": span.queue_wait_s,
            "queue_busy_s": span.queue_busy_s,
            "enqueues": span.enqueues,
            "dequeues": span.dequeues,
            "drops": span.drops,
            "drop_reasons": dict(sorted(span.drop_reasons.items())),
            "ecn_marks": span.ecn_marks,
            "reroutes": span.reroutes,
            "retransmits": span.retransmits,
            "rtos": span.rtos,
            "rto_wait_s": span.rto_wait_s,
            "ooo": span.ooo,
            "ack_events": span.ack_events,
            "fault_affected": self._fault_affected(span),
            "retained": span.retained,
        }
        if stats is not None:
            doc["size"] = stats.flow.size
            doc["start"] = stats.flow.start_time
            doc["src"] = stats.flow.src
            doc["dst"] = stats.flow.dst
            doc["fast_recoveries"] = stats.fast_recoveries
            doc["timeouts"] = stats.timeouts
        doc["attribution"] = _attribute(doc, stats)
        # "queued behind flow X on port P": the top waits, determinis-
        # tically ordered (largest wait first, then flow id, then port).
        behind = sorted(
            span.behind.items(), key=lambda kv: (-kv[1], kv[0][0], str(kv[0][1]))
        )[:5]
        doc["behind"] = [
            {"flow": head, "port": port, "wait_s": wait}
            for (head, port), wait in behind
        ]
        doc["port_wait"] = {
            str(port): wait for port, wait in sorted(span.port_wait.items(),
                                                     key=lambda kv: str(kv[0]))
        }
        if span.hops is not None:
            doc["hops"] = [
                dict({"t": t, "kind": kind}, **fields)
                for (t, kind, fields) in span.hops
            ]
            doc["truncated_hops"] = span.truncated_hops
        return doc

    def _totals(self) -> dict:
        comp_sums = {c: 0.0 for c in COMPONENTS}
        fct_sum = 0.0
        completed = 0
        dominant: Counter = Counter()
        retained: Counter = Counter()
        for span in self._flows.values():
            if span.retained is not None:
                retained[span.retained] += 1
        # Component sums come from the per-flow docs so they match what
        # the file reports flow-by-flow.
        for fid in sorted(self._flows):
            span = self._flows[fid]
            if span.fct is None:
                continue
            completed += 1
            fct_sum += span.fct
            stats = None
            if self._registry is not None:
                try:
                    stats = self._registry.stats(fid)
                except Exception:
                    stats = None
            attr = _attribute(
                {
                    "fct": span.fct,
                    "queue_wait_s": span.queue_wait_s,
                    "queue_busy_s": span.queue_busy_s,
                    "rto_wait_s": span.rto_wait_s,
                    "drops": span.drops,
                    "reroutes": span.reroutes,
                    "ooo": span.ooo,
                    "retransmits": span.retransmits,
                },
                stats,
            )
            for c in COMPONENTS:
                comp_sums[c] += attr["components"][c]
            dominant[attr["dominant"]] += 1
        shares = {
            c: (comp_sums[c] / fct_sum if fct_sum > 0 else 0.0) for c in COMPONENTS
        }
        return {
            "flows": len(self._flows),
            "completed": completed,
            "fct_sum": fct_sum,
            "components_s": comp_sums,
            "shares": shares,
            "dominant": dict(sorted(dominant.items())),
            "retained": dict(sorted(retained.items())),
        }

    # -- persistence -------------------------------------------------------

    def save(self, path: str | Path) -> Path:
        """Write the finalized span document, byte-identical per seed."""
        if self.data is None:
            self.finalize()
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(self.data, sort_keys=True, separators=(",", ":"))
        if path.suffix == ".gz":
            with path.open("wb") as fh:
                # mtime=0 keeps the compressed bytes reproducible.
                with gzip.GzipFile(filename="", mode="wb", fileobj=fh, mtime=0) as gz:
                    gz.write(payload.encode("utf-8"))
        else:
            path.write_text(payload + "\n")
        return path

    def extras(self) -> dict:
        """Compact summary for ``RunMetrics.extras['spans']``."""
        if self.data is None:
            self.finalize()
        totals = self.data["totals"]
        return {
            "flows": totals["flows"],
            "retained": totals["retained"],
            "shares": {k: round(v, 6) for k, v in totals["shares"].items()},
            "dominant": totals["dominant"],
        }


# -- attribution -----------------------------------------------------------


def _attribute(doc: dict, stats=None) -> dict:
    """Split one flow's FCT into named components, deterministically.

    * ``queueing``: wall-clock union of intervals during which at least
      one of the flow's data packets was waiting in a queue (the summed
      per-packet waits overcount — a window of packets waits
      concurrently).
    * recovery time (RTO waits plus one handshake-RTT per fast-recovery
      episode) is labeled ``retransmit`` when the flow saw genuine
      drops, ``reroute`` when a path switch caused the reordering that
      triggered it, and ``reorder`` otherwise.
    * the residual (serialization + propagation) is ``transfer``.

    ``dominant`` is the largest of the four named components, ties
    broken in :data:`COMPONENTS` order; a flow with no named time is
    ``transfer``-dominated.
    """
    fct = doc.get("fct")
    queue_s = doc.get("queue_busy_s", doc.get("queue_wait_s", 0.0))
    rto_s = doc.get("rto_wait_s", 0.0)
    rtt0 = 0.0
    fast_recoveries = 0
    if stats is not None:
        fast_recoveries = stats.fast_recoveries
        if stats.established is not None and stats.syn_sent is not None:
            rtt0 = stats.established - stats.syn_sent
    recovery_s = rto_s + fast_recoveries * rtt0
    components = {c: 0.0 for c in COMPONENTS}
    components["queueing"] = queue_s
    if recovery_s > 0:
        if doc.get("drops", 0) > 0:
            components["retransmit"] = recovery_s
        elif doc.get("reroutes", 0) > 0:
            components["reroute"] = recovery_s
        else:
            components["reorder"] = recovery_s
    dominant = "transfer"
    best = 0.0
    for c in COMPONENTS:
        if components[c] > best:
            best = components[c]
            dominant = c
    transfer = None
    if fct is not None:
        transfer = max(0.0, fct - sum(components.values()))
    shares = None
    if fct is not None and fct > 0:
        shares = {c: components[c] / fct for c in COMPONENTS}
    return {
        "components": components,
        "transfer": transfer,
        "dominant": dominant,
        "shares": shares,
    }


# -- loading and presentation ----------------------------------------------


def load_spans(path: str | Path) -> dict:
    """Read a span document written by :meth:`SpanBuffer.save`."""
    from repro.obs.tracers import open_trace_text

    path = Path(path)
    with open_trace_text(path) as fh:
        data = json.load(fh)
    if data.get("format") != FORMAT:
        raise ConfigError(
            f"{path}: not a span file (format={data.get('format')!r})")
    return data


def tail_flows(data: dict, n: int) -> list[tuple[int, dict]]:
    """The ``n`` slowest completed flows, slowest first (stable order)."""
    rows = [
        (int(fid), doc) for fid, doc in data["flows"].items()
        if doc.get("fct") is not None
    ]
    rows.sort(key=lambda r: (-r[1]["fct"], r[0]))
    return rows[:n]


def _fmt_s(seconds: Optional[float]) -> str:
    if seconds is None:
        return "-"
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds * 1e6:.1f} us"


def _fmt_size(nbytes: Optional[int]) -> str:
    if nbytes is None:
        return "?"
    if nbytes >= 1_000_000:
        return f"{nbytes / 1e6:.1f} MB"
    return f"{nbytes / 1e3:.1f} KB"


def _flow_lines(fid: int, doc: dict, *, hops: int = 12) -> list[str]:
    attr = doc.get("attribution") or {}
    comps = attr.get("components") or {}
    shares = attr.get("shares") or {}
    head = (
        f"flow {fid} ({doc.get('class') or '?'}, {_fmt_size(doc.get('size'))})"
        f"  fct={_fmt_s(doc.get('fct'))}  dominant={attr.get('dominant', '?')}"
    )
    if doc.get("fault_affected"):
        head += "  [fault-affected]"
    lines = [head]
    comp_bits = []
    for c in COMPONENTS:
        v = comps.get(c, 0.0)
        if v > 0:
            pct = f" ({shares[c] * 100:.0f}%)" if shares and shares.get(c) else ""
            comp_bits.append(f"{c} {_fmt_s(v)}{pct}")
    if attr.get("transfer") is not None:
        comp_bits.append(f"transfer {_fmt_s(attr['transfer'])}")
    if comp_bits:
        lines.append("  components: " + " · ".join(comp_bits))
    counts = (
        f"  events: {doc.get('enqueues', 0)} enq · {doc.get('drops', 0)} drops"
        f" · {doc.get('ecn_marks', 0)} marks · {doc.get('ooo', 0)} ooo"
        f" · {doc.get('reroutes', 0)} reroutes · {doc.get('rtos', 0)} RTOs"
    )
    lines.append(counts)
    for b in doc.get("behind", [])[:3]:
        lines.append(
            f"  queued behind flow {b['flow']} for {_fmt_s(b['wait_s'])}"
            f" on {b['port']}"
        )
    port_wait = doc.get("port_wait") or {}
    if port_wait:
        ordered = sorted(port_wait.items(), key=lambda kv: (-kv[1], kv[0]))
        hop_bits = [f"{port} {_fmt_s(wait)}" for port, wait in ordered[:4] if wait > 0]
        if hop_bits:
            lines.append("  per-hop wait (summed per-packet): " + " · ".join(hop_bits))
    timeline = doc.get("hops")
    if timeline:
        lines.append(f"  timeline ({min(hops, len(timeline))} of "
                     f"{len(timeline) + doc.get('truncated_hops', 0)} events):")
        for ev in timeline[:hops]:
            where = ev.get("port") or ev.get("node") or ""
            detail = []
            for key in ("qlen", "wait", "head", "reason", "seq", "qth",
                        "from_port", "to_port", "regime", "waited", "expected"):
                if key in ev and ev[key] is not None:
                    val = ev[key]
                    if key in ("wait", "waited") and isinstance(val, float):
                        val = _fmt_s(val)
                    detail.append(f"{key}={val}")
            lines.append(
                f"    t={ev['t']:.6f}  {ev['kind']:<10} {where}  "
                + " ".join(detail)
            )
    return lines


def explain_payload(
    data: dict, *, flow: Optional[int] = None, tail: int = 5
) -> dict:
    """The machine-readable slice ``repro explain --format json`` emits."""
    if flow is not None:
        doc = data["flows"].get(str(flow))
        if doc is None:
            raise ConfigError(f"flow {flow} not present in span file")
        flows = [{"flow": flow, **doc}]
    else:
        flows = [{"flow": fid, **doc} for fid, doc in tail_flows(data, tail)]
    return {
        "format": FORMAT,
        "seed": data.get("seed"),
        "totals": data.get("totals"),
        "events": data.get("events"),
        "flows": flows,
    }


def format_explain(
    data: dict, *, flow: Optional[int] = None, tail: int = 5, hops: int = 12
) -> str:
    """Human-readable causal timelines for one flow or the tail set."""
    lines: list[str] = []
    totals = data.get("totals") or {}
    shares = totals.get("shares") or {}
    share_bits = " · ".join(
        f"{c} {shares.get(c, 0.0) * 100:.1f}%" for c in COMPONENTS
    )
    lines.append(
        f"spans: {totals.get('flows', 0)} flows tracked, "
        f"{totals.get('completed', 0)} completed; FCT shares: {share_bits}"
    )
    events = data.get("events") or []
    if events:
        lines.append(f"faults ({len(events)}):")
        for ev in events:
            where = ev.get("node") or ""
            lines.append(f"  t={ev['t']:.6f}  {ev['kind']:<10} {where}")
    lines.append("")
    if flow is not None:
        doc = data["flows"].get(str(flow))
        if doc is None:
            raise ConfigError(f"flow {flow} not present in span file")
        lines.extend(_flow_lines(flow, doc, hops=hops))
    else:
        rows = tail_flows(data, tail)
        lines.append(f"top {len(rows)} tail flows:")
        lines.append("")
        for fid, doc in rows:
            lines.extend(_flow_lines(fid, doc, hops=hops))
            lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def summary_row(data: dict) -> dict:
    """Span-derived diff columns: tail attribution shares for a run."""
    totals = data.get("totals") or {}
    shares = totals.get("shares") or {}
    retained = totals.get("retained") or {}
    # "n_flows"/"n_completed" hit repro.obs.diff's _NEUTRAL/_HIGHER_BETTER
    # substring conventions, so span columns diff with correct direction.
    row = {
        "name": "spans",
        "n_flows": totals.get("flows", 0),
        "n_completed": totals.get("completed", 0),
        "retained_full": sum(retained.values()),
    }
    for c in COMPONENTS:
        row[f"{c}_share"] = round(shares.get(c, 0.0), 6)
    dominant = totals.get("dominant") or {}
    if dominant:
        top = sorted(dominant.items(), key=lambda kv: (-kv[1], kv[0]))[0]
        row["dominant"] = f"{top[0]}:{top[1]}"
    return row
