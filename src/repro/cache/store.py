"""The on-disk result store: content-addressed, atomic, concurrency-safe.

Layout (all under one cache root)::

    <root>/
      objects/<sha256>.pkl   one pickled result per key
      index.jsonl            append-only metadata log (one line per put)

``objects/`` is the source of truth: a lookup is a single O(1) path
probe, so the store needs no locking to read.  Writes go through a
temporary file in the same directory followed by :func:`os.replace`, so
a concurrent sweep (or a killed process) can never leave a partially
written entry — readers see either nothing or complete bytes.  Two
sweeps computing the same key race benignly: last rename wins and both
contents are byte-equivalent by construction (deterministic runs).

``index.jsonl`` is a human-greppable sidecar for ``repro cache stats``
(scheme/seed/load per entry) — appends from concurrent writers
interleave per line, duplicates are deduped key-last-wins on load, and
a missing or stale index never affects correctness.

A corrupted or truncated object (disk full, version skew) is treated as
a **miss**: the entry is moved into ``quarantine/`` (unlink as the
fallback) and the scenario is simply recomputed.  ``stats`` surfaces
the quarantine so corruption is visible instead of silently eaten, and
``gc`` purges it.

Fleets (:mod:`repro.fleet`) conventionally keep their directories under
``<root>/fleets/<name>``; ``gc`` is lease-aware — the planned cells of
any fleet with a fresh worker/lease heartbeat are never evicted out
from under the run that is about to collect them.
"""

from __future__ import annotations

import json
import os
import pickle
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator, Optional

from repro.cache.key import cache_key, code_fingerprint
from repro.errors import ConfigError
from repro.obs.metrics import MetricsRegistry, get_registry

__all__ = ["CacheStats", "ResultCache", "default_cache_dir", "parse_size"]

_OBJECTS = "objects"
_INDEX = "index.jsonl"
_QUARANTINE = "quarantine"
_FLEETS = "fleets"

#: a fleet whose newest lease/worker heartbeat file is younger than this
#: is considered active, and its cells are protected from gc eviction
_FLEET_ACTIVE_WINDOW = 600.0

_SIZE_SUFFIXES = {"K": 1024, "M": 1024 ** 2, "G": 1024 ** 3, "T": 1024 ** 4}


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


def parse_size(text: str) -> int:
    """``"500M"``/``"2G"``/plain bytes → byte count (for ``gc``)."""
    s = str(text).strip().upper().removesuffix("B")
    if not s:
        raise ConfigError(f"empty size {text!r}")
    factor = 1
    if s[-1] in _SIZE_SUFFIXES:
        factor = _SIZE_SUFFIXES[s[-1]]
        s = s[:-1]
    try:
        value = float(s)
    except ValueError:
        raise ConfigError(f"unparseable size {text!r}") from None
    if value < 0:
        raise ConfigError(f"size must be >= 0, got {text!r}")
    return int(value * factor)


@dataclass
class CacheStats:
    """A snapshot of the store plus this session's hit/miss counters."""

    root: str
    entries: int
    total_bytes: int
    hits: int
    misses: int
    fingerprint: str
    #: entry count per scheme, from the index (best-effort)
    by_scheme: dict[str, int] = field(default_factory=dict)
    #: corrupt entries sitting in ``quarantine/`` (cleaned by ``gc``)
    quarantined: int = 0
    quarantined_bytes: int = 0
    #: raw ``index.jsonl`` line count — greater than ``entries`` means
    #: the append-only index has grown stale duplicates (``gc`` compacts)
    index_lines: int = 0

    def summary(self) -> str:
        lines = [
            f"cache dir : {self.root}",
            f"entries   : {self.entries}",
            f"size      : {self.total_bytes / 1e6:.2f} MB",
            f"session   : {self.hits} hit(s), {self.misses} miss(es)",
            f"code fp   : {self.fingerprint[:16]}…",
        ]
        if self.by_scheme:
            per = ", ".join(f"{s}={n}" for s, n in sorted(self.by_scheme.items()))
            lines.append(f"by scheme : {per}")
        if self.quarantined:
            lines.append(
                f"quarantine: {self.quarantined} corrupt entr"
                f"{'y' if self.quarantined == 1 else 'ies'}"
                f" ({self.quarantined_bytes / 1e6:.2f} MB) — run"
                " `repro cache gc` to purge")
        if self.index_lines > self.entries:
            lines.append(
                f"index     : {self.index_lines} line(s) for"
                f" {self.entries} entries — run `repro cache gc`"
                " to compact")
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        """Machine-readable form (``repro cache stats --json``)."""
        from dataclasses import asdict

        return asdict(self)


class ResultCache:
    """Content-addressed store of per-scenario results.

    Parameters
    ----------
    root:
        Cache directory (created on first write).  Defaults to
        :func:`default_cache_dir`.
    fingerprint:
        Code fingerprint folded into every key; defaults to
        :func:`~repro.cache.key.code_fingerprint` of the installed
        package.  Tests inject a constant to decouple from the tree.
    metrics:
        The :class:`~repro.obs.metrics.MetricsRegistry` lookups, puts,
        quarantines and gc report into; defaults to the process-wide
        registry.  Tests inject a private one to isolate counts.
    """

    def __init__(self, root: Optional[str | Path] = None, *,
                 fingerprint: Optional[str] = None,
                 metrics: Optional[MetricsRegistry] = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self._fingerprint = fingerprint
        self._metrics = metrics if metrics is not None else get_registry()
        self.hits = 0
        self.misses = 0

    def _count(self, name: str, help: str, amount: float = 1,
               **labels) -> None:
        self._metrics.counter(name, help).inc(amount, **labels)

    # -- key plumbing ------------------------------------------------------

    @property
    def fingerprint(self) -> str:
        if self._fingerprint is None:
            self._fingerprint = code_fingerprint()
        return self._fingerprint

    def key_for(self, config: Any) -> str:
        """The content address of ``config`` under the current code."""
        return cache_key(config, self.fingerprint)

    def cacheable(self, config: Any) -> bool:
        """Whether ``config`` can be keyed (is a dataclass instance)."""
        try:
            self.key_for(config)
        except TypeError:
            return False
        return True

    def _object_path(self, key: str) -> Path:
        return self.root / _OBJECTS / f"{key}.pkl"

    def _quarantine_path(self, key: str) -> Path:
        return self.root / _QUARANTINE / f"{key}.pkl"

    # -- lookup / store ----------------------------------------------------

    def contains(self, config: Any) -> bool:
        """Whether a stored entry exists, without loading or counting it.

        A single path probe — what the fleet planner uses to mark cells
        as already computed without paying the unpickle.
        """
        try:
            return self._object_path(self.key_for(config)).exists()
        except TypeError:
            return False

    def _quarantine(self, path: Path, key: str) -> None:
        """Move a corrupt entry aside for ``stats``/``gc`` accounting."""
        self._count("repro_cache_quarantined_total",
                    "Corrupt entries moved to quarantine on read.")
        target = self._quarantine_path(key)
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, target)
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass

    def get(self, config: Any) -> Optional[Any]:
        """The stored result for ``config``, or None on any miss.

        Counts the lookup in :attr:`hits`/:attr:`misses`; a corrupted
        entry is quarantined and reported as a miss, never an error.
        """
        lookups = "repro_cache_lookups_total"
        lookups_help = "Cache lookups by result."
        try:
            key = self.key_for(config)
        except TypeError:
            self.misses += 1
            self._count(lookups, lookups_help, result="miss")
            return None
        path = self._object_path(key)
        try:
            blob = path.read_bytes()
            result = pickle.loads(blob)
        except FileNotFoundError:
            self.misses += 1
            self._count(lookups, lookups_help, result="miss")
            return None
        except Exception:
            # Truncated/corrupted/unreadable entry: set it aside (so
            # `repro cache stats` can report the corruption) and recompute.
            self._quarantine(path, key)
            self.misses += 1
            self._count(lookups, lookups_help, result="miss")
            return None
        self.hits += 1
        self._count(lookups, lookups_help, result="hit")
        try:  # LRU signal for gc(); never worth failing a hit over
            os.utime(path)
        except OSError:
            pass
        return result

    def put(self, config: Any, result: Any) -> Optional[Path]:
        """Store ``result`` under ``config``'s key (atomic rename).

        Returns the entry path, or None when the config cannot be keyed
        or the result cannot be pickled (both are silently uncacheable,
        not errors — a sweep must never die on write-back).
        """
        try:
            key = self.key_for(config)
            blob = pickle.dumps(result, protocol=4)
        except Exception:
            return None
        path = self._object_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / f".tmp-{os.getpid()}-{key[:16]}"
        try:
            tmp.write_bytes(blob)
            os.replace(tmp, path)
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass
            return None
        self._count("repro_cache_puts_total", "Results written to the cache.")
        self._count("repro_cache_put_bytes_total",
                    "Bytes written to the cache.", len(blob))
        self._append_index(key, config, len(blob))
        return path

    def _append_index(self, key: str, config: Any, n_bytes: int) -> None:
        line = {"key": key, "bytes": n_bytes, "created": time.time()}
        for name in ("scheme", "workload", "seed", "load"):
            value = getattr(config, name, None)
            if isinstance(value, (str, int, float, bool)):
                line[name] = value
        try:
            with (self.root / _INDEX).open("a") as fh:
                fh.write(json.dumps(line, sort_keys=True) + "\n")
        except OSError:
            pass  # the index is advisory

    def _read_index(self) -> dict[str, dict]:
        """key → metadata, deduped last-wins; {} when absent/corrupt."""
        entries: dict[str, dict] = {}
        try:
            with (self.root / _INDEX).open() as fh:
                for raw in fh:
                    try:
                        line = json.loads(raw)
                        entries[line["key"]] = line
                    except (ValueError, KeyError, TypeError):
                        continue
        except OSError:
            pass
        return entries

    # -- maintenance -------------------------------------------------------

    def _iter_objects(self) -> Iterator[Path]:
        try:
            yield from (self.root / _OBJECTS).glob("*.pkl")
        except OSError:
            return

    def _iter_quarantine(self) -> Iterator[Path]:
        try:
            yield from (self.root / _QUARANTINE).glob("*.pkl")
        except OSError:
            return

    def _count_index_lines(self) -> int:
        try:
            with (self.root / _INDEX).open() as fh:
                return sum(1 for line in fh if line.strip())
        except OSError:
            return 0

    def stats(self) -> CacheStats:
        """Scan the store (entries, bytes, quarantine, index health)."""
        entries = 0
        total = 0
        live_keys = set()
        for path in self._iter_objects():
            try:
                total += path.stat().st_size
            except OSError:
                continue
            entries += 1
            live_keys.add(path.stem)
        quarantined = 0
        quarantined_bytes = 0
        for path in self._iter_quarantine():
            try:
                quarantined_bytes += path.stat().st_size
            except OSError:
                continue
            quarantined += 1
        by_scheme: dict[str, int] = {}
        for key, meta in self._read_index().items():
            if key in live_keys and "scheme" in meta:
                s = str(meta["scheme"])
                by_scheme[s] = by_scheme.get(s, 0) + 1
        return CacheStats(
            root=str(self.root), entries=entries, total_bytes=total,
            hits=self.hits, misses=self.misses,
            fingerprint=self.fingerprint, by_scheme=by_scheme,
            quarantined=quarantined, quarantined_bytes=quarantined_bytes,
            index_lines=self._count_index_lines(),
        )

    def clear(self) -> int:
        """Delete every entry (index and quarantine too); returns count."""
        removed = 0
        for path in list(self._iter_objects()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        for path in list(self._iter_quarantine()):
            try:
                path.unlink()
            except OSError:
                pass
        try:
            (self.root / _INDEX).unlink()
        except OSError:
            pass
        return removed

    def _active_fleet_keys(self) -> set[str]:
        """Cell keys of every fleet under ``<root>/fleets`` that still
        shows a recent lease/worker heartbeat — results a running (or
        recently live) sweep is about to collect must not be evicted.
        """
        protected: set[str] = set()
        fleets = self.root / _FLEETS
        try:
            fleet_dirs = [p for p in fleets.iterdir() if p.is_dir()]
        except OSError:
            return protected
        now = time.time()
        for fleet_dir in fleet_dirs:
            active = False
            for sub in ("leases", "workers"):
                try:
                    for path in (fleet_dir / sub).glob("*.json"):
                        if now - path.stat().st_mtime <= _FLEET_ACTIVE_WINDOW:
                            active = True
                            break
                except OSError:
                    continue
                if active:
                    break
            if not active:
                continue
            try:
                with (fleet_dir / "fleet.jsonl").open() as fh:
                    for raw in fh:
                        try:
                            record = json.loads(raw)
                        except ValueError:
                            continue
                        if isinstance(record, dict) and \
                                record.get("kind") == "cell":
                            key = record.get("cell")
                            if isinstance(key, str):
                                protected.add(key)
            except OSError:
                continue
        return protected

    def purge_quarantine(self) -> tuple[int, int]:
        """Delete everything in ``quarantine/``; ``(removed, bytes)``."""
        removed = 0
        freed = 0
        for path in list(self._iter_quarantine()):
            try:
                size = path.stat().st_size
                path.unlink()
            except OSError:
                continue
            removed += 1
            freed += size
        return removed, freed

    def gc(self, max_bytes: int, *, protect: Iterable[str] = ()
           ) -> tuple[int, int]:
        """Evict least-recently-used entries until ≤ ``max_bytes``.

        Recency is file mtime (refreshed on every hit).  Also purges the
        quarantine (corrupt entries are dead weight) and compacts a
        stale-grown ``index.jsonl`` even when nothing is evicted.

        Keys in ``protect`` — plus the planned cells of any *active*
        fleet under ``<root>/fleets`` (fresh lease/worker heartbeats) —
        are exempt from eviction, so a concurrent ``repro cache gc``
        cannot pull freshly computed results out from under a running
        sweep.  Returns ``(entries_removed, bytes_freed)`` counting the
        quarantine purge.
        """
        if max_bytes < 0:
            raise ConfigError(f"max_bytes must be >= 0, got {max_bytes!r}")
        removed, freed = self.purge_quarantine()
        protected = set(protect) | self._active_fleet_keys()
        stamped = []
        total = 0
        for path in self._iter_objects():
            try:
                st = path.stat()
            except OSError:
                continue
            stamped.append((st.st_mtime, st.st_size, path))
            total += st.st_size
        stamped.sort()  # oldest first
        for _, size, path in stamped:
            if total <= max_bytes:
                break
            if path.stem in protected:
                continue
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            freed += size
            removed += 1
        live = {p.stem for p in self._iter_objects()}
        if self._count_index_lines() != len(live):
            self._compact_index()
        self._count("repro_cache_gc_runs_total", "Garbage-collection passes.")
        if removed:
            self._count("repro_cache_gc_evicted_total",
                        "Entries removed by gc (quarantine included).",
                        removed)
        if freed:
            self._count("repro_cache_gc_freed_bytes_total",
                        "Bytes freed by gc.", freed)
        return removed, freed

    def _compact_index(self) -> None:
        """Rewrite the index to the entries that still exist (atomic)."""
        live = {p.stem for p in self._iter_objects()}
        entries = self._read_index()
        tmp = self.root / f".{_INDEX}.tmp-{os.getpid()}"
        try:
            with tmp.open("w") as fh:
                for key, meta in entries.items():
                    if key in live:
                        fh.write(json.dumps(meta, sort_keys=True) + "\n")
            os.replace(tmp, self.root / _INDEX)
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass

    # -- reporting ---------------------------------------------------------

    def session_summary(self) -> dict[str, Any]:
        """Hit/miss counters for manifests and heartbeat lines."""
        return {"dir": str(self.root), "hits": self.hits,
                "misses": self.misses,
                "fingerprint": self.fingerprint}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ResultCache(root={str(self.root)!r}, hits={self.hits}, "
                f"misses={self.misses})")
