"""Cache keys: canonical config digests and the code fingerprint.

A cached result is only reusable when *both* the scenario and the code
that produced it are unchanged, so every key combines two digests:

* the **config digest** — a SHA-256 over a canonical JSON projection of
  the :class:`~repro.experiments.common.ScenarioConfig`, covering every
  field that can change the simulation outcome (scheme, fabric shape,
  workload, fault schedule, asymmetry overrides, seed, horizon, ...) and
  deliberately *excluding* pure observability knobs (trace verbosity,
  telemetry profiling, live time-series collection) that leave the
  returned :class:`~repro.metrics.collector.RunMetrics` untouched;
* the **code fingerprint** — the package version plus a SHA-256 over
  every ``*.py`` file in the installed ``repro`` source tree, so any
  code change (even a one-line bugfix deep in the transport) invalidates
  the whole cache rather than serving stale results.

Canonicalisation makes the digest independent of dict ordering and of
tuple-vs-list spelling: values are projected to JSON with sorted keys,
tuples become lists, and anything non-primitive falls back to ``repr``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path
from typing import Any, Mapping, Optional

from repro._version import __version__

__all__ = [
    "NON_SEMANTIC_FIELDS",
    "canonical_config",
    "config_digest",
    "code_fingerprint",
    "cache_key",
]

#: layout/derivation salt; bump to orphan every existing entry at once
KEY_SCHEMA = "repro-cache-v1"

#: ScenarioConfig fields that cannot change RunMetrics: observability
#: and profiling knobs only.  Everything else is semantic by default, so
#: a *new* config field is conservatively cache-invalidating until it is
#: explicitly listed here.
NON_SEMANTIC_FIELDS = frozenset({
    "trace_kinds",   # which trace records are kept (RecordingTracer)
    "telemetry",     # wall-clock profiling into extras
    "timeseries",    # live BinnedSeries trackers (not part of RunMetrics)
    "bin_width",     # bin width of those live trackers
    "spans",         # per-flow span forensics (observability artefact)
    "profile",       # kernel self-profiler (wall-time attribution)
    "metrics",       # metrics-registry emission (metrics.prom/metrics.json)
})


def _canon(value: Any) -> Any:
    """JSON-stable projection of one config field value."""
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, float):
        # repr() is the shortest round-trip form on every supported
        # Python; int-valued floats stay distinct from ints ("1.0").
        return repr(value)
    if isinstance(value, (list, tuple)):
        return [_canon(v) for v in value]
    if isinstance(value, Mapping):
        return {str(k): _canon(v) for k, v in value.items()}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: _canon(getattr(value, f.name))
                for f in dataclasses.fields(value)}
    return repr(value)


def _canon_workload(spec: str) -> str:
    """Canonicalise the workload axis via the scenario registry.

    Scenario specs reduce to their canonical form (alias == expansion,
    parameter order irrelevant) plus the content fingerprint of any
    trace file they read, so editing a CDF file invalidates exactly its
    own cells.  Legacy values and unparseable strings pass through
    verbatim (a config that cannot parse cannot have produced a cached
    result either).
    """
    from repro.errors import ConfigError
    from repro.workload.scenarios import canonical_workload

    try:
        return canonical_workload(spec)
    except ConfigError:
        return spec


def canonical_config(config: Any) -> dict[str, Any]:
    """The semantic fields of a config, canonicalised for hashing.

    Works on any dataclass; fields named in :data:`NON_SEMANTIC_FIELDS`
    are dropped.  A string ``workload`` field is additionally routed
    through the scenario registry's canonical form (see
    :func:`_canon_workload`).
    """
    if not (dataclasses.is_dataclass(config) and not isinstance(config, type)):
        raise TypeError(
            f"cache keys need a dataclass config, got {type(config).__name__}")
    out = {
        f.name: _canon(getattr(config, f.name))
        for f in dataclasses.fields(config)
        if f.name not in NON_SEMANTIC_FIELDS
    }
    if isinstance(out.get("workload"), str):
        out["workload"] = _canon_workload(out["workload"])
    return out


def config_digest(config: Any) -> str:
    """SHA-256 hex digest of the canonical config projection."""
    payload = json.dumps(canonical_config(config), sort_keys=True,
                         separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


_fingerprint_cache: dict[str, str] = {}


def code_fingerprint(root: Optional[Path] = None) -> str:
    """Digest of the ``repro`` source tree (or ``root``) + version.

    Hashes every ``*.py`` under the package directory in sorted relative
    order (path and content both), so moving, renaming, adding, or
    editing any module changes the fingerprint.  Computed once per
    process per root.
    """
    if root is None:
        import repro

        root = Path(repro.__file__).resolve().parent
    root = Path(root)
    cached = _fingerprint_cache.get(str(root))
    if cached is not None:
        return cached
    h = hashlib.sha256()
    h.update(KEY_SCHEMA.encode())
    h.update(__version__.encode())
    for path in sorted(root.rglob("*.py")):
        h.update(str(path.relative_to(root)).encode())
        h.update(b"\0")
        h.update(path.read_bytes())
    fingerprint = h.hexdigest()
    _fingerprint_cache[str(root)] = fingerprint
    return fingerprint


def cache_key(config: Any, fingerprint: Optional[str] = None) -> str:
    """The content address of one (config, code) pair."""
    if fingerprint is None:
        fingerprint = code_fingerprint()
    h = hashlib.sha256()
    h.update(KEY_SCHEMA.encode())
    h.update(fingerprint.encode())
    h.update(config_digest(config).encode())
    return h.hexdigest()
