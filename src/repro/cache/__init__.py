"""Content-addressed scenario result cache.

Figure sweeps are deterministic: the same
:class:`~repro.experiments.common.ScenarioConfig` under the same code
always produces byte-identical
:class:`~repro.metrics.collector.RunMetrics` (PR 4's kernel work made
this a tested invariant).  That makes results *content-addressable* —
this package stores them on disk keyed by a stable hash of the
canonicalised config plus a fingerprint of the ``repro`` source tree,
so re-running an unchanged sweep resolves instantly from cache.

* :mod:`repro.cache.key` — canonical config digests, the code
  fingerprint, and the combined cache key;
* :mod:`repro.cache.store` — :class:`ResultCache`, the atomic on-disk
  store with ``stats`` / ``clear`` / ``gc`` maintenance.

Consumed by :func:`repro.experiments.runner.run_many` (hits are
resolved before any worker process is spawned; misses are written back
as they complete) and surfaced on the CLI as ``--cache`` /
``--cache-dir`` on ``repro run/sweep/figure`` and the ``repro cache``
subcommand.
"""

from repro.cache.key import (
    NON_SEMANTIC_FIELDS,
    cache_key,
    canonical_config,
    code_fingerprint,
    config_digest,
)
from repro.cache.store import CacheStats, ResultCache, default_cache_dir, parse_size

__all__ = [
    "NON_SEMANTIC_FIELDS",
    "cache_key",
    "canonical_config",
    "code_fingerprint",
    "config_digest",
    "CacheStats",
    "ResultCache",
    "default_cache_dir",
    "parse_size",
]
