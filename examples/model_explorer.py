#!/usr/bin/env python3
"""Explore the §4 queueing model (Eqs. 1–9) without running a simulation.

Computes, over vectorised parameter grids:

* the switching threshold ``q_th`` as a function of short/long flow
  counts, path count and deadline (the four Fig. 7 panels);
* the model's mean short-flow FCT (Eq. 8) vs the paths allocated;
* the path split n_S / n_L the model implies at an operating point.

Usage::

    python examples/model_explorer.py
    python examples/model_explorer.py --rate 10e9 --deadline 0.005
"""

import argparse

import numpy as np

from repro.core import model
from repro.experiments.report import format_table
from repro.units import DEFAULT_PACKET_BYTES, KB, KiB


def parse_args() -> argparse.Namespace:
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("--rate", type=float, default=1e9, help="link rate (bps)")
    p.add_argument("--rtt", type=float, default=100e-6, help="RTT (s)")
    p.add_argument("--interval", type=float, default=500e-6,
                   help="update interval t (s)")
    p.add_argument("--deadline", type=float, default=0.010, help="D (s)")
    p.add_argument("--short-size", type=float, default=KB(70),
                   help="mean short-flow size (bytes)")
    p.add_argument("--paths", type=int, default=15)
    return p.parse_args()


def main() -> None:
    args = parse_args()
    c = model.capacity_pps(args.rate, DEFAULT_PACKET_BYTES)
    x = args.short_size / 1460
    w_l = KiB(64) / 1460
    base = dict(x_packets=x, deadline=args.deadline, n_paths=args.paths,
                w_l_packets=w_l, interval=args.interval, rtt=args.rtt,
                c_pps=c)

    print(f"link capacity: {c:,.0f} packets/s; mean short flow: {x:.1f} "
          f"packets ({model.slow_start_rounds(x):.0f} slow-start rounds)\n")

    # Panel 1: q_th vs m_S (vectorised over the whole axis at once).
    m_s = np.arange(20, 160, 20)
    qth = model.qth_full(m_s, 3, **base)
    print(format_table(
        ["m_short", "qth_packets"], list(zip(m_s.tolist(), qth.tolist())),
        title="q_th vs number of short flows (m_L=3)"))
    print()

    # Panel 2: q_th vs m_L.
    m_l = np.arange(1, 6)
    qth = model.qth_full(100, m_l, **base)
    print(format_table(
        ["m_long", "qth_packets"], list(zip(m_l.tolist(), qth.tolist())),
        title="q_th vs number of long flows (m_S=100)"))
    print()

    # Panel 3: the implied path split at the operating point.
    n_s = model.required_short_paths(100, x, args.deadline, c)
    print(f"path split at m_S=100, D={args.deadline * 1e3:.0f} ms: "
          f"n_S={n_s:.2f}, n_L={args.paths - n_s:.2f} of n={args.paths}\n")

    # Panel 4: Eq. 8's mean FCT vs allocated paths.
    n_paths = np.arange(max(1, int(np.ceil(n_s))), args.paths + 1, dtype=float)
    fct = model.mean_short_fct(100, x, n_paths, c)
    print(format_table(
        ["n_short_paths", "mean_fct_ms"],
        [[int(n), f * 1e3] for n, f in zip(n_paths, fct)],
        title="Eq. 8 mean short-flow FCT vs allocated paths (m_S=100)"))


if __name__ == "__main__":
    main()
