#!/usr/bin/env python3
"""Extending the library: write, register and evaluate a custom scheme.

Implements "LeastBytes" — a per-flow balancer that assigns each new flow
to the uplink with the fewest cumulative bytes (a static least-loaded
placement, no rerouting) — registers it next to the built-ins, and races
it against ECMP and TLB on the microbenchmark.

This is the template for plugging your own load balancer into every
experiment driver and benchmark in the repository.

Usage::

    python examples/custom_scheme.py
"""

from repro.experiments import ScenarioConfig, run_scenario
from repro.experiments.report import format_table
from repro.lb import LoadBalancer, register_scheme


class LeastBytesBalancer(LoadBalancer):
    """Assign each new flow to the uplink with the fewest bytes so far.

    Flow-level (no rerouting, hence no reordering), but load-aware at
    placement time — a middle ground between ECMP and CONGA.
    """

    name = "leastbytes"

    def __init__(self, seed: int = 0):
        super().__init__(seed)
        self._flows: dict[tuple[int, bool], int] = {}

    def select_port(self, pkt, ports):
        c = self.counters
        c.decisions += 1
        c.state_reads += 1
        key = pkt.lb_key()
        idx = self._flows.get(key)
        if idx is None:
            # Place on the uplink with the least cumulative traffic.
            c.queue_reads += len(ports)
            idx = min(range(len(ports)),
                      key=lambda i: ports[i].stats.bytes_enqueued)
            self._flows[key] = idx
            c.state_writes += 1
            c.note_entries(len(self._flows))
        if pkt.ends_flow:
            self._flows.pop(key, None)
        return ports[idx % len(ports)]

    def state_entries(self) -> int:
        return len(self._flows)


def main() -> None:
    register_scheme(
        "leastbytes", lambda seed, net, switch, params: LeastBytesBalancer(seed))

    config = ScenarioConfig(
        n_paths=8, hosts_per_leaf=110, n_short=100, n_long=4,
        long_size=2_000_000, short_window=0.01, horizon=1.5,
        distinct_hosts=True)

    rows = []
    for scheme in ("ecmp", "leastbytes", "tlb"):
        m = run_scenario(config.with_(scheme=scheme)).metrics
        rows.append([
            scheme,
            m.short_fct.mean * 1e3,
            m.short_fct.p99 * 1e3,
            m.long_goodput_bps / 1e6,
            m.short_reordering.dup_ack_ratio,
        ])
    print(format_table(
        ["scheme", "afct_ms", "p99_ms", "long_Mbps", "dup_ratio"], rows,
        title="custom LeastBytes scheme vs ECMP and TLB"))
    print("\nLeastBytes fixes ECMP's hash collisions at placement time, "
          "but only TLB adapts while flows run.")


if __name__ == "__main__":
    main()
