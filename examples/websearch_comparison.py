#!/usr/bin/env python3
"""Web-search workload comparison — the paper's Fig. 10 as a script.

Sweeps load for every scheme on the DCTCP web-search flow-size
distribution and prints the four panels (short-flow AFCT, 99th-pct FCT,
deadline misses, long-flow throughput).

Usage::

    python examples/websearch_comparison.py                # reduced scale
    python examples/websearch_comparison.py --paper-scale  # 8x8x256 hosts (slow!)
    python examples/websearch_comparison.py --workload data_mining
    python examples/websearch_comparison.py --loads 0.2 0.8 --schemes ecmp tlb
"""

import argparse

from repro.experiments import largescale


def parse_args() -> argparse.Namespace:
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("--workload", choices=("web_search", "data_mining"),
                   default="web_search")
    p.add_argument("--schemes", nargs="+",
                   default=list(largescale.DEFAULT_SCHEMES))
    p.add_argument("--loads", nargs="+", type=float, default=[0.2, 0.5, 0.8])
    p.add_argument("--flows", type=int, default=150,
                   help="number of Poisson-arriving flows")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--paper-scale", action="store_true",
                   help="the full 8-leaf/8-spine/256-host fabric of §6.2 "
                        "(CPU-hours at high load)")
    p.add_argument("--processes", type=int, default=None,
                   help="sweep parallelism (default: CPU count)")
    return p.parse_args()


def main() -> None:
    args = parse_args()
    if args.paper_scale:
        config = largescale.paper_scale_config(args.workload, seed=args.seed)
    else:
        config = largescale.default_config(
            args.workload, n_leaves=2, n_paths=4, hosts_per_leaf=16,
            n_flows=args.flows, seed=args.seed)
    rows = largescale.run_load_sweep(
        config, schemes=args.schemes, loads=args.loads,
        processes=args.processes)
    print(largescale.tabulate(rows, args.workload))

    # Paper-style headline: TLB's AFCT reduction at the highest load.
    top = max(args.loads)
    cell = {(r.scheme, r.load): r for r in rows}
    if "tlb" in args.schemes:
        tlb = cell[("tlb", top)].short_afct
        print(f"\nshort-flow AFCT reduction of TLB at load {top}:")
        for s in args.schemes:
            if s == "tlb":
                continue
            other = cell[(s, top)].short_afct
            print(f"  vs {s:8s}: {100 * (1 - tlb / other):5.1f} %")


if __name__ == "__main__":
    main()
