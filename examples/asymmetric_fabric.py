#!/usr/bin/env python3
"""Asymmetric fabrics — the paper's Figs. 16/17 as a script.

Degrades two randomly chosen leaf–spine links (extra delay and/or
reduced bandwidth) and compares how each scheme copes, at the paper's
testbed scale (20 Mbps links, 1 ms delay, 10 equal-cost paths).

Usage::

    python examples/asymmetric_fabric.py                       # delay sweep
    python examples/asymmetric_fabric.py --kind bandwidth
    python examples/asymmetric_fabric.py --values 0 0.002 0.01 # delays (s)
"""

import argparse

from repro.experiments import asymmetry, testbed


def parse_args() -> argparse.Namespace:
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("--kind", choices=("delay", "bandwidth"), default="delay")
    p.add_argument("--values", nargs="+", type=float, default=None,
                   help="extra delays in seconds, or rate factors")
    p.add_argument("--schemes", nargs="+",
                   default=list(asymmetry.DEFAULT_SCHEMES))
    p.add_argument("--short-flows", type=int, default=60)
    p.add_argument("--long-flows", type=int, default=3)
    p.add_argument("--seed", type=int, default=1)
    return p.parse_args()


def main() -> None:
    args = parse_args()
    values = args.values
    if values is None:
        values = [0.0, 2e-3, 8e-3] if args.kind == "delay" else [1.0, 0.5, 0.2]
    config = testbed.testbed_config(
        n_short=args.short_flows, n_long=args.long_flows,
        hosts_per_leaf=args.short_flows + args.long_flows + 10,
        long_size=2_000_000, short_window=1.0, horizon=40.0,
        distinct_hosts=True, seed=args.seed)

    pair = asymmetry.degraded_pair(config)
    print(f"degrading links: {pair[0][0]}<->{pair[0][1]} and "
          f"{pair[1][0]}<->{pair[1][1]} ({args.kind} sweep)\n")
    rows = asymmetry.run_asymmetry_sweep(
        args.kind, values, config=config, schemes=args.schemes)
    print(asymmetry.tabulate(rows, args.kind))


if __name__ == "__main__":
    main()
