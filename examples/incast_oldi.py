#!/usr/bin/env python3
"""OLDI partition–aggregate (incast) under different load balancers.

The paper motivates TLB with online data-intensive applications whose
fan-in requests are deadline-bound.  This example issues partition–
aggregate requests (one aggregator, N worker responses) *while long
background flows occupy the fabric*, and compares request completion
times (RCT, gated by the slowest response) across schemes.

Usage::

    python examples/incast_oldi.py
    python examples/incast_oldi.py --fanout 16 --requests 30
    python examples/incast_oldi.py --schemes ecmp tlb --background 0
"""

import argparse

import numpy as np

from repro.experiments.report import format_table
from repro.lb import attach_scheme
from repro.metrics.monitor import QueueMonitor
from repro.net.topology import build_two_leaf_fabric
from repro.transport.flow import FlowRegistry
from repro.units import KB, MB
from repro.workload.generator import StaticWorkload
from repro.workload.incast import IncastWorkload, request_completion_times


def parse_args() -> argparse.Namespace:
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("--schemes", nargs="+",
                   default=["ecmp", "rps", "letflow", "tlb"])
    p.add_argument("--requests", type=int, default=20)
    p.add_argument("--fanout", type=int, default=12)
    p.add_argument("--response-kb", type=float, default=32.0)
    p.add_argument("--background", type=int, default=3,
                   help="number of long background flows (0 disables)")
    p.add_argument("--paths", type=int, default=8)
    p.add_argument("--seed", type=int, default=1)
    return p.parse_args()


def run_scheme(args, scheme: str) -> dict:
    net = build_two_leaf_fabric(
        n_paths=args.paths, hosts_per_leaf=max(args.fanout + 4, 16),
        seed=args.seed)
    attach_scheme(net, scheme)
    registry = FlowRegistry()
    if args.background:
        StaticWorkload(
            net, registry, n_short=0, n_long=args.background,
            long_size=MB(5), short_window=1.0).install()
    incast = IncastWorkload(
        net, registry,
        n_requests=args.requests, fanout=args.fanout,
        response_size=KB(args.response_kb), request_interval=0.008,
        deadline=0.010, flow_id_base=10_000)
    incast.install()
    monitor = QueueMonitor(net.sim, net.uplink_ports(net.leaves[0]),
                           period=0.001)
    net.sim.run(until=2.0)
    rct = request_completion_times(incast, registry)
    finite = rct[np.isfinite(rct)]
    misses = sum(
        1 for s in registry.all_stats()
        if s.missed_deadline)
    return {
        "scheme": scheme,
        "rct_mean_ms": float(np.mean(finite)) * 1e3 if finite.size else float("nan"),
        "rct_p99_ms": float(np.percentile(finite, 99)) * 1e3 if finite.size else float("nan"),
        "completed": int(finite.size),
        "missed_deadlines": misses,
        "uplink_imbalance": float(monitor.imbalance().mean())
        if monitor.n_samples else 0.0,
    }


def main() -> None:
    args = parse_args()
    rows = [run_scheme(args, s) for s in args.schemes]
    print(format_table(
        ["scheme", "RCT_mean_ms", "RCT_p99_ms", "completed",
         "missed_deadlines", "uplink_imbalance"],
        [[r["scheme"], r["rct_mean_ms"], r["rct_p99_ms"], r["completed"],
          r["missed_deadlines"], r["uplink_imbalance"]] for r in rows],
        title=(f"partition-aggregate: {args.requests} requests x fanout "
               f"{args.fanout}, {args.background} background elephants"),
    ))
    print("\nRCT is gated by the slowest of the fan-in responses, so a "
          "single response stuck behind an elephant blows the whole "
          "request — exactly the tail effect TLB targets.")


if __name__ == "__main__":
    main()
