#!/usr/bin/env python3
"""Watch the queueing process of Figs. 2 and 5 directly.

Runs the paper's illustrative scenario — one long flow plus a burst of
short flows over a handful of equal-cost paths — under each granularity
and under TLB, sampling every uplink queue, and renders the occupancy
time lines as sparklines.  The pictures to look for:

* flow-level: one deep queue (the elephant's), others idle — Fig. 2(a);
* packet-level: all queues shallow and even — Fig. 2(b);
* flowlet-level: stuck assignments — Fig. 2(c);
* TLB: the elephant parks on one queue while the burst is in flight,
  then spreads — Fig. 5.

Usage::

    python examples/queue_dynamics.py
    python examples/queue_dynamics.py --paths 3 --shorts 20
"""

import argparse

from repro.lb import attach_scheme
from repro.metrics.monitor import QueueMonitor
from repro.net.topology import build_two_leaf_fabric
from repro.transport.flow import FlowRegistry
from repro.units import KB, MB, microseconds
from repro.viz import sparkline
from repro.workload.generator import StaticWorkload

SCENARIOS = [
    ("flow-level", "fixed", {"granularity_bytes": None}),
    ("flowlet-level", "letflow", {"flowlet_timeout": microseconds(150)}),
    ("packet-level", "rps", {}),
    ("TLB", "tlb", {}),
]


def parse_args() -> argparse.Namespace:
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("--paths", type=int, default=4)
    p.add_argument("--shorts", type=int, default=30)
    p.add_argument("--longs", type=int, default=1)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--window-ms", type=float, default=20.0,
                   help="how long to watch (simulated)")
    return p.parse_args()


def run_one(args, label: str, scheme: str, params: dict) -> None:
    net = build_two_leaf_fabric(
        n_paths=args.paths, hosts_per_leaf=args.shorts + args.longs,
        seed=args.seed)
    attach_scheme(net, scheme, **params)
    monitor = QueueMonitor(net.sim, net.uplink_ports(net.leaves[0]),
                           period=100e-6)
    registry = FlowRegistry()
    StaticWorkload(
        net, registry, n_short=args.shorts, n_long=args.longs,
        long_size=MB(10),
        short_window=args.window_ms / 2e3,  # burst in the first half
        distinct_hosts=True,
    ).install()
    net.sim.run(until=args.window_ms * 1e-3)
    monitor.stop()

    matrix = monitor.matrix()
    print(f"\n== {label} ({scheme}) — uplink queue occupancy over "
          f"{args.window_ms:.0f} ms (peak {int(matrix.max())} pkts) ==")
    for i, port in enumerate(monitor.ports):
        series = matrix[:, i]
        print(f"  {port.name:16s} {sparkline(series, width=64)} "
              f"max={int(series.max()):3d} mean={series.mean():5.1f}")
    done = sum(1 for s in registry.all_stats() if s.completed is not None)
    print(f"  flows completed within the window: {done}/{len(registry)}")


def main() -> None:
    args = parse_args()
    for label, scheme, params in SCENARIOS:
        run_one(args, label, scheme, params)
    print("\nFlow-level parks the elephant (one hot queue); packet-level "
          "flattens everything but reorders; TLB parks the elephant while "
          "the short burst runs, then releases it.")


if __name__ == "__main__":
    main()
