#!/usr/bin/env python3
"""Quickstart: simulate TLB on the paper's microbenchmark and print a report.

Builds the §4.2 leaf–spine fabric (15 equal-cost paths, 1 Gbps, 100 µs
RTT), runs 100 short + 3 long DCTCP flows under a chosen load-balancing
scheme, and prints the metrics the paper reports.

Usage::

    python examples/quickstart.py                 # TLB
    python examples/quickstart.py --scheme ecmp   # any registered scheme
    python examples/quickstart.py --list          # show available schemes
"""

import argparse

from repro.experiments import ScenarioConfig, run_scenario
from repro.lb import available_schemes


def parse_args() -> argparse.Namespace:
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("--scheme", default="tlb", help="load-balancing scheme")
    p.add_argument("--seed", type=int, default=1, help="experiment seed")
    p.add_argument("--short-flows", type=int, default=100)
    p.add_argument("--long-flows", type=int, default=3)
    p.add_argument("--paths", type=int, default=15)
    p.add_argument("--list", action="store_true", help="list schemes and exit")
    return p.parse_args()


def main() -> None:
    args = parse_args()
    if args.list:
        print("available schemes:", ", ".join(available_schemes()))
        return

    config = ScenarioConfig(
        scheme=args.scheme,
        seed=args.seed,
        n_paths=args.paths,
        hosts_per_leaf=args.short_flows + args.long_flows,
        n_short=args.short_flows,
        n_long=args.long_flows,
        short_window=0.02,
        distinct_hosts=True,
        horizon=2.0,
    )
    print(f"running {args.scheme} on a 2x{args.paths} leaf-spine fabric "
          f"with {args.short_flows} short + {args.long_flows} long flows...")
    result = run_scenario(config)
    print()
    print(result.metrics.summary())
    print()
    print(f"simulated {result.metrics.horizon * 1e3:.1f} ms of network time "
          f"in {result.net.sim.events_processed:,} events; "
          f"all flows completed: {result.completed_all}")

    if args.scheme == "tlb":
        lb = result.balancers[result.net.leaves[0].name]
        d = lb.calculator.last_decision
        if d is not None:
            print(f"\nTLB switch state at leaf0: q_th={lb.qth} packets "
                  f"(regime={d.regime}, m_S={d.m_short}, m_L={d.m_long}), "
                  f"{lb.long_reroutes} long-flow reroutes, "
                  f"{lb.table.promotions} promotions")


if __name__ == "__main__":
    main()
